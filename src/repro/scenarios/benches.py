"""Catalog-driven acceptance bench runners (the BENCH_* records).

Each runner here used to live inline in a ``benchmarks/bench_e*.py``
script with its own hard-coded knobs; the scripts are now thin pytest
shims and the logic lives here, parameterized by the scenario's
tier-resolved ``bench`` params.  A runner returns ``(metrics, detail)``:

* ``metrics`` — a *flat* dict of scalars; the drift comparator gates
  these per the scenario's policy and the catalog's acceptance checks
  evaluate against them.  Runners do **not** assert — pass/fail is the
  catalog's declarative job.
* ``detail`` — the free-form record payload humans read (per-leg
  reports, hunt ladders, counters); never drift-compared.

``log`` is a print-like callable for progress lines (CI logs keep the
narrative the old scripts printed).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable

__all__ = ["BENCH_RUNNERS"]

Log = Callable[[str], None]


def _leg_record(report, alive=None):
    out = report.as_dict()
    out.pop("latency_ms", None)   # bucket dump; percentiles retained
    out.pop("steady_ms", None)    # ditto (churn-stream reports)
    out.pop("warmup_ms", None)
    if alive is not None:
        out["alive_after"] = alive
    return out


def _accounted(report) -> bool:
    """Every offered request got exactly one recorded outcome."""
    return (report.completed + report.late + report.rejected + report.shed
            + report.errors) == report.offered


# ----------------------------------------------------------------------
# E13 — kernel backends vs reference DPs.
# ----------------------------------------------------------------------
def bench_e13(params: dict[str, Any], log: Log):
    import numpy as np

    from ..core import cost_partition_rebalance, ptas_rebalance
    from ..workloads import random_instance

    trials = params.get("trials", 4)
    eps = params.get("eps", 0.75)
    ptas_seed = params.get("ptas_seed", 13)
    cost_seed = params.get("cost_seed", 8)
    ptas_reps = params.get("ptas_reps", 3)
    cost_reps = params.get("cost_reps", 12)

    def key(res):
        return (res.guessed_opt, res.planned_cost,
                tuple(int(x) for x in res.assignment.mapping))

    def cases_for(n, m, seed, budget_div):
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(trials):
            inst = random_instance(n, m, rng, cost_family="random",
                                   integer_sizes=(n <= 16))
            out.append((inst, float(inst.costs.sum()) / budget_div))
        return out

    def best_of_pair(ref_fn, ker_fn, cases, reps):
        # Interleaved best-of-N strips scheduler/allocator spikes that
        # otherwise dominate millisecond kernels on a busy host.
        ref_best = [float("inf")] * len(cases)
        ker_best = [float("inf")] * len(cases)
        for _ in range(reps):
            for i, case in enumerate(cases):
                start = time.perf_counter()
                ref_fn(case)
                ref_best[i] = min(ref_best[i], time.perf_counter() - start)
                start = time.perf_counter()
                ker_fn(case)
                ker_best[i] = min(ker_best[i], time.perf_counter() - start)
        return sum(ref_best), sum(ker_best)

    detail: dict[str, Any] = {}
    identical = True

    cases = cases_for(7, 3, ptas_seed, 2.0)
    ref_out = [ptas_rebalance(i, b, eps=eps, backend="reference")
               for i, b in cases]
    ker_out = [ptas_rebalance(i, b, eps=eps, backend="kernel")
               for i, b in cases]
    identical &= [key(r) for r in ref_out] == [key(r) for r in ker_out]
    ref_s, ker_s = best_of_pair(
        lambda c: ptas_rebalance(c[0], c[1], eps=eps, backend="reference"),
        lambda c: ptas_rebalance(c[0], c[1], eps=eps, backend="kernel"),
        cases, reps=ptas_reps,
    )
    ptas_speedup = ref_s / ker_s if ker_s else float("inf")
    detail["e4_ptas"] = {
        "n": 7, "m": 3, "eps": eps, "trials": len(cases),
        "reference_s": ref_s, "kernel_s": ker_s, "speedup": ptas_speedup,
    }
    log(f"[E13] e4_ptas: {ref_s * 1e3:.2f}ms -> {ker_s * 1e3:.2f}ms "
        f"({ptas_speedup:.2f}x)")

    cases = cases_for(64, 6, cost_seed, 4.0)
    ref_out = [cost_partition_rebalance(i, b, backend="reference")
               for i, b in cases]
    ker_out = [cost_partition_rebalance(i, b, backend="kernel")
               for i, b in cases]
    identical &= [key(r) for r in ref_out] == [key(r) for r in ker_out]
    ref_s, ker_s = best_of_pair(
        lambda c: cost_partition_rebalance(c[0], c[1], backend="reference"),
        lambda c: cost_partition_rebalance(c[0], c[1], backend="kernel"),
        cases, reps=cost_reps,
    )
    cost_speedup = ref_s / ker_s if ker_s else float("inf")
    detail["e5_cost_partition"] = {
        "n": 64, "m": 6, "trials": len(cases),
        "reference_s": ref_s, "kernel_s": ker_s, "speedup": cost_speedup,
    }
    log(f"[E13] e5_cost_partition: {ref_s * 1e3:.2f}ms -> "
        f"{ker_s * 1e3:.2f}ms ({cost_speedup:.2f}x)")

    metrics = {
        "e4_ptas_speedup": ptas_speedup,
        "e5_cost_partition_speedup": cost_speedup,
        "solutions_identical": bool(identical),
    }
    return metrics, detail


# ----------------------------------------------------------------------
# E14 — batched vs naive serving.
# ----------------------------------------------------------------------
def bench_e14(params: dict[str, Any], log: Log):
    from ..service import (
        ServerConfig,
        ServiceClient,
        calibrate_workload,
        run_loadgen,
        start_background,
    )

    rate = params.get("rate", 120.0)
    duration_s = params.get("duration_s", 2.0)
    duplicates = params.get("duplicates", 4)
    deadline_ms = params.get("deadline_ms", 300.0)
    max_queue = params.get("max_queue", 64)
    overload_queue = params.get("overload_queue", 24)

    def run(server_config, loadgen_config):
        with start_background(server_config) as handle:
            report = run_loadgen(handle.host, handle.port, loadgen_config)
            with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
                alive = probe.ping()
                status = probe.status()
        return report, alive, status

    base, scratch_s = calibrate_workload()
    lg = replace(base, rate=rate, duration_s=duration_s,
                 duplicates=duplicates, deadline_ms=deadline_ms)

    batched, batched_alive, _ = run(ServerConfig(max_queue=max_queue), lg)
    naive, naive_alive, _ = run(ServerConfig.naive(max_queue=max_queue), lg)
    # Overload rows: past capacity with a tight admission queue.  The
    # naive solver is the slow path, so its queue is where rejections
    # must appear; the batched server gets twice the offered rate.
    over_b, over_b_alive, over_b_status = run(
        ServerConfig(max_queue=overload_queue), replace(lg, rate=2 * rate)
    )
    over_n, over_n_alive, over_n_status = run(
        ServerConfig.naive(max_queue=overload_queue), lg
    )

    ratio = batched.goodput_per_s / max(naive.goodput_per_s, 1e-9)
    log(f"[E14] batched {batched.goodput_per_s:.1f}/s (p99 "
        f"{batched.p99_ms:.1f}ms) vs naive {naive.goodput_per_s:.1f}/s "
        f"(p99 {naive.p99_ms:.1f}ms): {ratio:.1f}x")
    log(f"[E14] overload: naive rejected {over_n.rejected}, shed "
        f"{over_n.shed}; batched@2x rejected {over_b.rejected}, late "
        f"{over_b.late}")

    legs = (batched, naive, over_b, over_n)
    metrics = {
        "goodput_ratio": ratio,
        "batched_p99_le_naive": bool(batched.p99_ms <= naive.p99_ms),
        "errors_total": sum(leg.errors for leg in legs),
        "accounted_ok": all(_accounted(leg) for leg in legs),
        "alive_all": bool(batched_alive and naive_alive and over_b_alive
                          and over_n_alive),
        "overload_naive_rejected": over_n.rejected,
        "overload_queues_drained": bool(
            over_b_status["queue"]["depth"] == 0
            and over_n_status["queue"]["depth"] == 0
        ),
    }
    detail = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "scratch_solve_ms": 1e3 * scratch_s,
            "rate_per_s": rate, "duration_s": duration_s,
            "duplicates": duplicates, "deadline_ms": deadline_ms,
        },
        "batched": _leg_record(batched, batched_alive),
        "naive": _leg_record(naive, naive_alive),
        "overload_batched_2x": _leg_record(over_b, over_b_alive),
        "overload_naive": _leg_record(over_n, over_n_alive),
        "goodput_ratio": ratio,
    }
    return metrics, detail


# ----------------------------------------------------------------------
# E15 — v2 binary + delta snapshots vs v1 JSON.
# ----------------------------------------------------------------------
def bench_e15(params: dict[str, Any], log: Log):
    import numpy as np

    from ..analysis.experiments import wire_sizes
    from ..core.instance import Instance
    from ..service import (
        PROTOCOL_V1,
        PROTOCOL_V2,
        ServerConfig,
        ServiceClient,
        build_snapshots,
        calibrate_wire_workload,
        encode_frame,
        run_loadgen,
        start_background,
        unpack_payload,
    )

    duration_s = params.get("duration_s", 2.0)
    deadline_ms = params.get("deadline_ms", 300.0)
    overload = params.get("overload", 1.35)
    rate_cap = params.get("rate_cap", 400.0)
    smoke_epochs = params.get("smoke_epochs", 12)

    base, codec_s = calibrate_wire_workload()

    # Wire invariants, no server: v2 strictly smaller than v1 for the
    # same snapshot, bit-exact through the codec, deltas >= 5x smaller.
    reference = build_snapshots(replace(base, epochs=1))[0]
    message = {"op": "rebalance", "shard": "smoke", "k": base.k,
               "deadline_ms": deadline_ms}
    v1 = encode_frame(message | {"instance": reference.to_dict()},
                      version=PROTOCOL_V1)
    v2 = encode_frame(message | {"instance": reference.to_wire()},
                      version=PROTOCOL_V2)
    decoded = Instance.from_dict(unpack_payload(v2[8:])["instance"])
    decode_exact = bool(
        np.array_equal(decoded.sizes, reference.sizes)
        and np.array_equal(decoded.costs, reference.costs)
        and np.array_equal(decoded.initial, reference.initial)
    )
    smoke_sizes = wire_sizes(replace(base, epochs=smoke_epochs))

    sizes = wire_sizes(base)
    rate = min(rate_cap, overload / codec_s)
    lg = replace(base, rate=rate, duration_s=duration_s,
                 deadline_ms=deadline_ms)

    def run(server_config, loadgen_config):
        with start_background(server_config) as handle:
            report = run_loadgen(handle.host, handle.port, loadgen_config)
            with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
                alive = probe.ping()
                status = probe.status()
        return report, alive, status

    baseline, base_alive, base_status = run(ServerConfig(max_queue=64), lg)
    optimized, opt_alive, opt_status = run(
        ServerConfig(executor="process", process_workers=2, max_queue=64),
        replace(lg, protocol="binary", delta=True),
    )

    ratio = optimized.goodput_per_s / max(baseline.goodput_per_s, 1e-9)
    log(f"[E15] wire: v1 full {sizes['v1_full_bytes']:.0f}B, v2 full "
        f"{sizes['v2_full_bytes']:.0f}B ({sizes['binary_reduction']:.2f}x), "
        f"delta {sizes['v2_delta_bytes']:.0f}B "
        f"({sizes['delta_reduction']:.0f}x)")
    log(f"[E15] goodput at {rate:.0f}/s: v2+delta+process "
        f"{optimized.goodput_per_s:.1f}/s (p99 {optimized.p99_ms:.1f}ms) vs "
        f"v1 json {baseline.goodput_per_s:.1f}/s "
        f"(p99 {baseline.p99_ms:.1f}ms): {ratio:.1f}x")

    metrics = {
        "v2_frame_smaller": bool(len(v2) < len(v1)),
        "v2_full_smaller": bool(
            sizes["v2_full_bytes"] < sizes["v1_full_bytes"]
            and smoke_sizes["v2_full_bytes"] < smoke_sizes["v1_full_bytes"]
        ),
        "decode_bit_exact": decode_exact,
        "binary_reduction": sizes["binary_reduction"],
        "delta_reduction": sizes["delta_reduction"],
        "goodput_ratio": ratio,
        "optimized_p99_le_baseline": bool(
            optimized.p99_ms <= baseline.p99_ms
        ),
        "optimized_deltas_sent": optimized.deltas_sent,
        "errors_total": baseline.errors + optimized.errors,
        "accounted_ok": _accounted(baseline) and _accounted(optimized),
        "alive_all": bool(base_alive and opt_alive),
        "optimized_executor_process": bool(
            opt_status["config"]["executor"] == "process"
        ),
        "queues_drained": bool(
            base_status["queue"]["depth"] == 0
            and opt_status["queue"]["depth"] == 0
        ),
    }
    detail = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "shards": base.shards,
            "duplicates": base.duplicates, "traffic": base.traffic,
            "codec_round_ms": 1e3 * codec_s, "rate_per_s": rate,
            "duration_s": duration_s, "deadline_ms": deadline_ms,
            "overload": overload,
        },
        "wire": sizes,
        "baseline_v1_thread": _leg_record(baseline, base_alive),
        "optimized_v2_delta_process": _leg_record(optimized, opt_alive),
        "goodput_ratio": ratio,
    }
    return metrics, detail


# ----------------------------------------------------------------------
# E16 — shm snapshot plane vs the inline worker-pipe codec.
# ----------------------------------------------------------------------
def bench_e16(params: dict[str, Any], log: Log):
    import numpy as np

    from ..core import make_instance
    from ..service import (
        ServerConfig,
        ServiceClient,
        build_snapshots,
        calibrate_shm_workload,
        run_loadgen,
        start_background,
    )

    duration_s = params.get("duration_s", 2.0)
    deadline_ms = params.get("deadline_ms", 300.0)
    load_factor = params.get("load_factor", 0.12)
    rate_cap = params.get("rate_cap", 100.0)
    rate_step = params.get("rate_step", 1.15)
    rate_leap = params.get("rate_leap", 1.3)
    max_rounds = params.get("max_rounds", 8)
    steady_rate = params.get("steady_rate", 200.0)
    steady_deadline_ms = params.get("steady_deadline_ms", 100.0)
    steady_sites = params.get("steady_sites", 600)
    ipc_sites = tuple(params.get("ipc_sites", (6_000, 24_000)))

    def primed_run(server_config, loadgen_config, prime_passes=2):
        # Walk the epoch stream through one delta client first so both
        # legs start with warm worker caches, delta bases, ring slots.
        snapshots = build_snapshots(loadgen_config)
        with start_background(server_config) as handle:
            with ServiceClient(
                handle.host, handle.port, protocol="binary", delta=True
            ) as primer:
                for _ in range(prime_passes):
                    for snapshot in snapshots:
                        primer.rebalance(
                            snapshot, loadgen_config.k,
                            shard=loadgen_config.shard,
                        )
            report = run_loadgen(handle.host, handle.port, loadgen_config)
            with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
                alive = probe.ping()
                status = probe.status()
        return report, alive, status

    # --- part 1: solve-request bytes must not scale with the snapshot.
    per_solve = {}
    shm_writes_once = True
    for n in ipc_sites:
        rng = np.random.default_rng(n)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, 12, n),
            num_processors=12,
        )
        config = ServerConfig(executor="process", process_workers=1,
                              shm_slot_bytes=1 << 20)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(inst, 8, shard="ipc")
                counters = client.status()["metrics"]["counters"]
        shm_writes_once &= counters.get("service.shm_writes") == 1
        per_solve[n] = counters["service.ipc_bytes_out"]
    small_n, big_n = min(per_solve), max(per_solve)
    ipc_small, ipc_big = per_solve[small_n], per_solve[big_n]
    ipc_flat = bool(ipc_big < 8 * big_n and ipc_big <= 1.5 * ipc_small)
    log(f"[E16] solve ipc bytes: n={small_n} -> {ipc_small}B, "
        f"n={big_n} -> {ipc_big}B (flat={ipc_flat})")

    # --- part 2: hunt the rate window only the shm transport carries.
    base, marshal_s = calibrate_shm_workload()
    rate = min(rate_cap, load_factor / marshal_s)
    slot_bytes = 1 << max(20, (16 + 24 * base.num_sites).bit_length())
    # Decision memo off on both legs: the cycled epochs would otherwise
    # be answered from the memo and the worker pipe — the transport
    # under comparison — never touched.
    shm_config = ServerConfig(executor="process", process_workers=2,
                              max_queue=64, shm_slot_bytes=slot_bytes,
                              decision_cache_size=0)
    inline_config = ServerConfig(executor="process", process_workers=2,
                                 max_queue=64, shm=False,
                                 decision_cache_size=0)

    attempts = []
    found = None
    for _ in range(max_rounds):
        lg = replace(base, rate=rate, duration_s=duration_s,
                     deadline_ms=deadline_ms, connections=8)
        inline_leg, inline_alive, inline_status = primed_run(
            inline_config, lg)
        if inline_leg.goodput_per_s >= 0.6 * rate:
            # Below the inline collapse edge: probe higher — coarsely
            # with full margin, finely once the leg strains.
            attempts.append({
                "rate_per_s": rate, "outcome": "inline sustained",
                "inline_goodput_per_s": inline_leg.goodput_per_s,
            })
            log(f"[E16] {rate:.0f}/s: inline sustained "
                f"({inline_leg.goodput_per_s:.1f}/s), climbing")
            strained = inline_leg.goodput_per_s < 0.95 * rate
            rate *= rate_step if strained else rate_leap
            continue
        shm_leg, shm_alive, shm_status = primed_run(shm_config, lg)
        ratio = shm_leg.goodput_per_s / max(inline_leg.goodput_per_s, 1e-9)
        attempts.append({
            "rate_per_s": rate, "outcome": f"ratio {ratio:.1f}x",
            "shm_goodput_per_s": shm_leg.goodput_per_s,
            "inline_goodput_per_s": inline_leg.goodput_per_s,
        })
        log(f"[E16] {rate:.0f}/s: shm {shm_leg.goodput_per_s:.1f}/s vs "
            f"inline {inline_leg.goodput_per_s:.1f}/s: {ratio:.1f}x")
        if shm_leg.goodput_per_s >= 0.6 * rate:
            if ratio >= 5.0:
                found = (rate, shm_leg, shm_alive, shm_status,
                         inline_leg, inline_alive, inline_status, ratio)
                break
            rate *= rate_step   # inline only grazing its edge: deepen
        else:
            rate /= rate_step   # window slid below this rate: back off

    # --- part 3: the quiet-cluster decision-memo fast path.
    steady_leg, steady_alive, steady_status = primed_run(
        ServerConfig(executor="process", process_workers=2, max_wait_ms=0.0),
        replace(base, num_sites=steady_sites, rate=steady_rate,
                duration_s=duration_s, deadline_ms=steady_deadline_ms,
                connections=4),
    )
    log(f"[E16] steady (n={steady_sites}, {steady_rate:.0f}/s): p50 "
        f"{steady_leg.p50_ms:.3f}ms p99 {steady_leg.p99_ms:.3f}ms")

    metrics = {
        "ipc_flat_across_n": ipc_flat,
        "ipc_single_shm_write": bool(shm_writes_once),
        "found_differential_rate": found is not None,
        "steady_p50_ms": steady_leg.p50_ms,
        "steady_clean": bool(
            steady_leg.errors == 0 and steady_leg.late == 0
            and _accounted(steady_leg) and steady_alive
        ),
    }
    detail = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "traffic": base.traffic, "duplicates": 1,
            "marshal_round_ms": 1e3 * marshal_s,
            "calibrated_rate_per_s": min(rate_cap, load_factor / marshal_s),
            "duration_s": duration_s, "deadline_ms": deadline_ms,
            "load_factor": load_factor,
        },
        "ipc_bytes_per_solve": {str(n): per_solve[n] for n in per_solve},
        "attempts": attempts,
        "steady_state_memo": _leg_record(steady_leg, steady_alive),
    }
    if found is not None:
        rate, shm_leg, shm_alive, shm_status, \
            inline_leg, inline_alive, inline_status, ratio = found
        shm_ipc = shm_status["metrics"]["counters"]["service.ipc_bytes_out"]
        inline_ipc = (
            inline_status["metrics"]["counters"]["service.ipc_bytes_out"]
        )
        log(f"[E16] ipc request bytes: shm {shm_ipc / 1e6:.2f}MB vs inline "
            f"{inline_ipc / 1e6:.2f}MB")
        metrics.update({
            "goodput_ratio": ratio,
            "shm_sustained": bool(shm_leg.goodput_per_s >= 0.6 * rate),
            "shm_ipc_below_tenth_of_inline": bool(
                shm_ipc < 0.1 * inline_ipc
            ),
            "errors_total": shm_leg.errors + inline_leg.errors,
            "accounted_ok": _accounted(shm_leg) and _accounted(inline_leg),
            "alive_all": bool(shm_alive and inline_alive),
            "queues_drained": bool(
                shm_status["queue"]["depth"] == 0
                and inline_status["queue"]["depth"] == 0
            ),
        })
        detail.update({
            "rate_per_s": rate,
            "shm_plane_process": _leg_record(shm_leg, shm_alive),
            "inline_codec_process": _leg_record(inline_leg, inline_alive),
            "goodput_ratio": ratio,
            "ipc_bytes_out": {"shm": shm_ipc, "inline": inline_ipc},
        })
    return metrics, detail


# ----------------------------------------------------------------------
# E17 — cluster tier: scale-out, kill -9 failover, router trajectory.
# ----------------------------------------------------------------------
def bench_e17(params: dict[str, Any], log: Log):
    import numpy as np

    from ..analysis.experiments import (
        _e17_balanced_shard_base,
        _e17_leg,
        _e17_workload,
    )
    from ..service import (
        BackendSpec,
        RouterConfig,
        ServerConfig,
        ServiceClient,
        start_background,
        start_router_background,
    )
    from ..websim import (
        EngineMPartitionPolicy,
        ServicePolicy,
        Simulation,
        build_cluster,
        make_traffic,
    )

    duration_s = params.get("duration_s", 2.5)
    deadline_ms = params.get("deadline_ms", 500.0)
    rate_cap = params.get("rate_cap", 150.0)
    shards = params.get("shards", 8)
    solve_delay_ms = params.get("solve_delay_ms", 80.0)
    overloads = tuple(params.get("overloads", (2.4, 3.0)))
    traj_epochs = params.get("traj_epochs", 12)
    traj_k = params.get("traj_k", 3)
    traj_sites = params.get("traj_sites", 80)
    traj_servers = params.get("traj_servers", 6)
    traj_seed = params.get("traj_seed", 36)
    p99_blip_factor = params.get("p99_blip_factor", 4.0)
    seed = params.get("seed", 17)

    def simulation(policy):
        rng = np.random.default_rng(traj_seed)
        cluster = build_cluster(traj_sites, traj_servers, rng)
        traffic = make_traffic("diurnal+flash", flash_probability=0.2)
        return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                          seed=traj_seed)

    # Websim through the router == in-process engine, record for record
    # — across two in-process backends so the decision stream crosses
    # the ring, delta replication, and both protocols' re-encoding.
    want = simulation(EngineMPartitionPolicy(k=traj_k)).run(traj_epochs)
    with start_background(ServerConfig()) as b0, \
            start_background(ServerConfig()) as b1:
        config = RouterConfig(backends=(
            BackendSpec("backend-0", b0.host, b0.port),
            BackendSpec("backend-1", b1.host, b1.port),
        ))
        with start_router_background(config) as router:
            policy = ServicePolicy(
                router.host, router.port, k=traj_k, shard="bench-traj",
                protocol="binary", delta=True,
            )
            try:
                got = simulation(policy).run(traj_epochs)
            finally:
                policy.close()
            with ServiceClient(router.host, router.port) as probe:
                traj_counters = (
                    probe.status()["router"]["metrics"]["counters"]
                )
    trajectory_identical = (
        len(got.records) == len(want.records) == traj_epochs
        and all(
            ours.makespan == theirs.makespan
            and ours.migrations == theirs.migrations
            and ours.migration_cost == theirs.migration_cost
            and ours.imbalance == theirs.imbalance
            for ours, theirs in zip(got.records, want.records)
        )
    )
    log(f"[E17] trajectory identical through the router: "
        f"{trajectory_identical} "
        f"({traj_counters.get('router.replicated', 0)} replica frames)")

    def cluster_lg(overload):
        base, solve_s = _e17_workload(seed)
        service_s = solve_s + solve_delay_ms / 1e3
        capacity = 1.0 / service_s
        rate = min(rate_cap, overload * capacity)
        # Full-queue drain ~70% of the deadline: deep enough to smooth
        # bursts, shallow enough admitted requests clear the deadline.
        max_queue = max(2, int(0.7 * (deadline_ms / 1e3) / service_s))
        shard_base = _e17_balanced_shard_base(
            ["backend-0", "backend-1"], shards
        )
        lg = replace(
            base, rate=rate, duration_s=duration_s, deadline_ms=deadline_ms,
            connections=16, duplicates=1, shards=shards, shard=shard_base,
            protocol="binary", delta=True,
        )
        return lg, solve_s, capacity, max_queue

    # Capacity is pinned by calibration, but a loaded host can still
    # depress one leg mid-run, so the overload factor is hunted over a
    # short ladder: a higher offered rate deepens the single leg's
    # saturation without moving the cluster leg's ceiling.
    attempts = []
    found = None
    for overload in overloads:
        lg, solve_s, capacity, max_queue = cluster_lg(overload)
        single, _ = _e17_leg(lg, 1, router=False, max_queue=max_queue,
                             solve_delay_ms=solve_delay_ms)
        cluster, counters = _e17_leg(lg, 2, router=True, max_queue=max_queue,
                                     solve_delay_ms=solve_delay_ms)
        ratio = cluster.goodput_per_s / max(single.goodput_per_s, 1e-9)
        attempts.append({
            "overload": overload, "rate_per_s": lg.rate,
            "single_goodput_per_s": single.goodput_per_s,
            "cluster_goodput_per_s": cluster.goodput_per_s,
            "ratio": ratio,
        })
        log(f"[E17] {lg.rate:.0f}/s ({overload:.1f}x one backend): single "
            f"{single.goodput_per_s:.1f}/s, cluster "
            f"{cluster.goodput_per_s:.1f}/s -> {ratio:.2f}x")
        if ratio >= 1.8:
            found = (lg, solve_s, capacity, max_queue, single, cluster,
                     counters, ratio)
            break

    metrics = {
        "trajectory_identical": bool(trajectory_identical),
        "scaleout_found": found is not None,
    }
    detail: dict[str, Any] = {
        "attempts": attempts,
        "trajectory_replicated_frames":
            traj_counters.get("router.replicated", 0),
    }
    if found is None:
        return metrics, detail
    lg, solve_s, capacity, max_queue, single, cluster, counters, ratio = found

    failover, f_counters = _e17_leg(
        lg, 2, router=True, kill_at_s=duration_s / 2, max_queue=max_queue,
        solve_delay_ms=solve_delay_ms,
    )
    log(f"[E17] failover: goodput {failover.goodput_per_s:.1f}/s, errors "
        f"{failover.errors}, p99 {failover.p99_ms:.0f}ms, deaths "
        f"{f_counters.get('router.backend_deaths', 0)}, replays "
        f"{f_counters.get('router.failover_replays', 0)}")

    metrics.update({
        "scaleout_ratio": ratio,
        "failover_errors": failover.errors,
        "failover_deaths": f_counters.get("router.backend_deaths", 0),
        "failover_p99_bounded": bool(
            failover.p99_ms <= p99_blip_factor * deadline_ms
        ),
        "failover_completed": failover.completed,
    })
    detail.update({
        "workload": {
            "num_sites": lg.num_sites, "num_servers": lg.num_servers,
            "k": lg.k, "shards": shards, "shard_base": lg.shard,
            "scratch_solve_ms": 1e3 * solve_s,
            "solve_delay_ms": solve_delay_ms,
            "per_backend_capacity_per_s": capacity,
            "rate_per_s": lg.rate, "duration_s": duration_s,
            "deadline_ms": deadline_ms, "max_queue": max_queue,
        },
        "goodput": {
            "single_per_s": single.goodput_per_s,
            "cluster_per_s": cluster.goodput_per_s,
            "ratio": ratio,
        },
        "single": _leg_record(single),
        "cluster": {**_leg_record(cluster), "router_counters": counters},
        "failover": {**_leg_record(failover), "router_counters": f_counters},
    })
    return metrics, detail


# ----------------------------------------------------------------------
# E18 — O(churn) steady-state decides at scale.
# ----------------------------------------------------------------------
def bench_e18(params: dict[str, Any], log: Log):
    from ..service import (
        BackendSpec,
        ChurnStreamConfig,
        HashRing,
        ServiceClient,
        run_churn_stream,
        spawn_router_process,
        spawn_serve_process,
    )

    backends = params.get("backends", 3)
    shards = params.get("shards", 6)
    servers = params.get("servers", 64)
    k = params.get("k", 512)
    churn = params.get("churn", 16)
    epochs = params.get("epochs", 24)
    warmup = params.get("warmup", 3)
    sites_small = params.get("sites_small", 16_700)
    sites_large = params.get("sites_large", 167_000)
    epoch_interval_ms = params.get("epoch_interval_ms", 300.0)
    growth_bound = params.get("p50_growth_bound", 2.0)
    required_total_large = params.get("required_total_large", 0)
    seed = params.get("seed", 18)

    node_names = tuple(f"backend-{i}" for i in range(backends))

    def balanced_shard_base() -> str:
        # Consistent hashing places the shard streams unevenly for most
        # name bases; "n sites across all backends" needs every backend
        # to own at least one stream (preferring a perfect split).
        ring = HashRing(node_names)
        best, best_spread = "e18", 0
        for attempt in range(1000):
            base = f"e18-{attempt}"
            owners = {ring.owner(f"{base}-{i}") for i in range(shards)}
            if len(owners) == backends:
                counts = [
                    sum(1 for i in range(shards)
                        if ring.owner(f"{base}-{i}") == node)
                    for node in node_names
                ]
                if max(counts) == shards // backends:
                    return base
                if len(owners) > best_spread:
                    best, best_spread = base, len(owners)
        if best_spread != backends:
            raise RuntimeError("no shard base covers all backends")
        return best

    def run_leg(sites_per_shard: int, shard_base: str, replicate: bool):
        # A fresh cluster per leg keeps the legs independent — nothing
        # warm carries over, so byte-identity across legs is meaningful.
        processes = []
        try:
            for _ in range(backends):
                processes.append(spawn_serve_process())
            specs = tuple(
                BackendSpec(name, proc.host, proc.port)
                for name, proc in zip(node_names, processes)
            )
            # The router must be its own OS process (as deployed): a
            # daemon-thread router here would share the caller's GIL.
            router_args = () if replicate else ("--no-replicate",)
            router = spawn_router_process(specs, *router_args)
            processes.append(router)
            config = ChurnStreamConfig(
                shard=shard_base, shards=shards, k=k,
                num_sites=sites_per_shard, num_servers=servers,
                churn=churn, epochs=epochs, warmup_epochs=warmup,
                seed=seed, timeout=600.0,
                epoch_interval_ms=epoch_interval_ms,
            )
            report = run_churn_stream(router.host, router.port, config)
            with ServiceClient(router.host, router.port,
                               timeout=120.0) as probe:
                status = probe.status()
        finally:
            for proc in processes:
                proc.terminate()
        counters = status["router"]["metrics"]["counters"]
        engines = {"incremental_decides": 0, "decisions": 0,
                   "churn_fallbacks": 0}
        for backend in status["backends"].values():
            for shard_stats in backend.get("shards", {}).values():
                engine = shard_stats.get("engine") or {}
                for key_ in engines:
                    engines[key_] += engine.get(key_, 0)
        return report, counters, engines

    def clean(report) -> bool:
        return (
            report.errors == 0
            and report.fp_mismatches == 0
            and report.completed == shards * epochs
            and report.deltas_sent == shards * (epochs - 1)
        )

    shard_base = balanced_shard_base()

    small, small_counters, small_engines = run_leg(
        sites_small, shard_base, replicate=False
    )
    log(f"[E18] small n={shards * sites_small}: steady p50 "
        f"{small.steady_p50_ms:.2f}ms p95 {small.steady_p95_ms:.2f}ms "
        f"({small.duration_s:.1f}s wall)")

    rerun, _, _ = run_leg(sites_small, shard_base, replicate=False)
    trajectory_identical = rerun.trajectories == small.trajectories
    log(f"[E18] small rerun byte-identical: {trajectory_identical} "
        f"({len(small.trajectories)} shard trajectories)")

    large, large_counters, large_engines = run_leg(
        sites_large, shard_base, replicate=False
    )
    growth = large.steady_p50_ms / max(small.steady_p50_ms, 1e-9)
    log(f"[E18] large n={shards * sites_large}: steady p50 "
        f"{large.steady_p50_ms:.2f}ms p95 {large.steady_p95_ms:.2f}ms -> "
        f"p50 growth {growth:.2f}x for "
        f"{sites_large / max(sites_small, 1):.0f}x sites")

    repl, repl_counters, repl_engines = run_leg(
        sites_large, shard_base, replicate=True
    )
    log(f"[E18] large+replication: steady p50 {repl.steady_p50_ms:.2f}ms, "
        f"{repl_counters.get('router.replicated', 0)} standby replays")

    total_large = shards * sites_large
    metrics = {
        "total_sites_large": total_large,
        "scale_target_met": bool(
            total_large >= required_total_large
        ) if required_total_large else True,
        "p50_growth": growth,
        "p50_growth_bound": growth_bound,
        "steady_p50_small_ms": small.steady_p50_ms,
        "steady_p50_large_ms": large.steady_p50_ms,
        "trajectory_identical": bool(trajectory_identical),
        "replication_trajectory_identical": bool(
            repl.trajectories == large.trajectories
        ),
        "legs_clean": bool(
            clean(small) and clean(rerun) and clean(large) and clean(repl)
        ),
        "incremental_decides_small": small_engines["incremental_decides"],
        "incremental_decides_large": large_engines["incremental_decides"],
        "churn_fallbacks_large": large_engines["churn_fallbacks"],
        "router_passthrough_ok": bool(
            large_counters.get("router.resident_deltas", 0)
            >= shards * (epochs - 1)
        ),
        "replication_replays_ok": bool(
            repl_counters.get("router.replicated", 0)
            >= shards * (epochs - 1)
        ),
        "replication_errors":
            repl_counters.get("router.replication_errors", 0),
    }
    detail = {
        "workload": {
            "backends": backends, "shards": shards,
            "servers_per_shard": servers, "k": k,
            "churn_per_shard_per_epoch": churn,
            "epochs": epochs, "warmup_epochs": warmup,
            "sites_per_shard_small": sites_small,
            "sites_per_shard_large": sites_large,
            "total_sites_small": shards * sites_small,
            "total_sites_large": total_large,
            "shard_base": shard_base,
            "solve_delay_ms": 0.0,
            "epoch_interval_ms": epoch_interval_ms,
        },
        "small": {
            **_leg_record(small),
            "router_counters": small_counters,
            "engines": small_engines,
        },
        "large": {
            **_leg_record(large),
            "router_counters": large_counters,
            "engines": large_engines,
        },
        "large_with_replication": {
            **_leg_record(repl),
            "router_counters": repl_counters,
            "engines": repl_engines,
        },
    }
    return metrics, detail


# ----------------------------------------------------------------------
# E19 — sharded router data plane: many-core scale-out proof.
# ----------------------------------------------------------------------
def bench_e19(params: dict[str, Any], log: Log):
    """Router goodput scales with data-plane worker processes.

    The measurement device mirrors E17's ``--solve-delay-ms``: each
    worker's relay capacity is *pinned by construction* with a
    concurrency gate (``relay_concurrency`` permits) plus a synthetic
    per-relay service-time floor held under the permit
    (``relay_delay_s``), so per-worker capacity is
    ``permits / (delay + real service)`` — independent of how many
    host cores happen to exist.  Offering both legs the same rate
    (an ``overload`` multiple of the N-worker aggregate) makes the
    goodput ratio N-to-1 a property of the architecture, measurable
    on a one-core CI box and unchanged on a many-core host (where the
    pin also stops mattering).
    """
    import os

    import numpy as np

    from ..service import (
        BackendSpec,
        ChurnStreamConfig,
        LoadGenConfig,
        RouterConfig,
        ServiceClient,
        HashRing,
        run_churn_stream,
        run_loadgen,
        spawn_serve_process,
        start_sharded_router,
        worker_for,
    )
    from ..websim import (
        EngineMPartitionPolicy,
        ServicePolicy,
        Simulation,
        build_cluster,
        make_traffic,
    )

    workers = params.get("workers", 4)
    min_ratio = params.get("min_ratio", 2.5)
    relay_concurrency = params.get("relay_concurrency", 1)
    relay_delay_ms = params.get("relay_delay_ms", 40.0)
    relay_queue = params.get("relay_queue", 6)
    overload = params.get("overload", 1.2)
    duration_s = params.get("duration_s", 4.0)
    deadline_ms = params.get("deadline_ms", 600.0)
    p99_tolerance = params.get("p99_tolerance", 1.05)
    sites = params.get("sites", 400)
    servers = params.get("servers", 8)
    k = params.get("k", 4)
    shards = params.get("shards", 2 * workers)
    connections = params.get("connections", 16)
    traj_epochs = params.get("traj_epochs", 12)
    traj_k = params.get("traj_k", 3)
    traj_sites = params.get("traj_sites", 80)
    traj_servers = params.get("traj_servers", 6)
    traj_seed = params.get("traj_seed", 36)
    enc_sites = params.get("enc_sites", 2_000)
    enc_churn = params.get("enc_churn", 8)
    enc_epochs = params.get("enc_epochs", 150)
    enc_shards = params.get("enc_shards", 2)
    seed = params.get("seed", 19)
    cores = os.cpu_count() or 1

    def balanced_worker_base() -> str:
        """A shard-name base whose ``shards`` streams split perfectly
        across the ``workers`` crc32-affine data-plane slices."""
        target = shards // workers
        best, best_spread = "e19", 1
        for attempt in range(5_000):
            base = f"e19-{attempt}"
            counts = [0] * workers
            for i in range(shards):
                counts[worker_for(f"{base}-{i}", workers)] += 1
            if max(counts) == target:
                return base
            spread = sum(1 for c in counts if c)
            if spread > best_spread:
                best, best_spread = base, spread
        if best_spread != workers:
            raise RuntimeError("no shard base covers all workers")
        return best

    shard_base = balanced_worker_base()
    per_worker_capacity = relay_concurrency / (relay_delay_ms / 1e3)
    rate = overload * per_worker_capacity * workers

    def scaling_leg(worker_count: int):
        processes = []
        try:
            processes = [spawn_serve_process(), spawn_serve_process()]
            specs = tuple(
                BackendSpec(f"backend-{i}", p.host, p.port)
                for i, p in enumerate(processes)
            )
            config = RouterConfig(
                backends=specs, replicate=False,
                relay_concurrency=relay_concurrency,
                relay_delay_s=relay_delay_ms / 1e3,
                relay_queue=relay_queue,
            )
            lg = LoadGenConfig(
                rate=rate, duration_s=duration_s,
                connections=connections, duplicates=1,
                num_sites=sites, num_servers=servers, k=k,
                deadline_ms=deadline_ms, seed=seed,
                protocol="binary", delta=False,
                shards=shards, shard=shard_base, traffic="drift",
            )
            with start_sharded_router(config, worker_count) as sharded:
                report = run_loadgen(sharded.host, sharded.port, lg)
                with ServiceClient(sharded.host, sharded.port,
                                   timeout=30.0) as probe:
                    status = probe.status()
            counters = status["router"]["metrics"]["counters"]
            return report, counters
        finally:
            for proc in processes:
                proc.terminate()

    single, single_counters = scaling_leg(1)
    log(f"[E19] offered {rate:.0f}/s ({overload:.1f}x the {workers}-worker "
        f"aggregate): 1 worker goodput {single.goodput_per_s:.1f}/s, "
        f"p99 {single.p99_ms:.0f}ms, rejected {single.rejected}")
    multi, multi_counters = scaling_leg(workers)
    ratio = multi.goodput_per_s / max(single.goodput_per_s, 1e-9)
    log(f"[E19] {workers} workers: goodput {multi.goodput_per_s:.1f}/s, "
        f"p99 {multi.p99_ms:.0f}ms, rejected {multi.rejected} -> "
        f"{ratio:.2f}x at {'<=' if multi.p99_ms <= single.p99_ms else '>'} "
        f"single-worker p99")

    # -- trajectory identity through the sharded data plane ------------
    def simulation(policy):
        rng = np.random.default_rng(traj_seed)
        cluster = build_cluster(traj_sites, traj_servers, rng)
        traffic = make_traffic("diurnal+flash", flash_probability=0.2)
        return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                          seed=traj_seed)

    want = simulation(EngineMPartitionPolicy(k=traj_k)).run(traj_epochs)

    def identical(got) -> bool:
        return len(got.records) == len(want.records) == traj_epochs and all(
            ours.makespan == theirs.makespan
            and ours.migrations == theirs.migrations
            and ours.migration_cost == theirs.migration_cost
            and ours.imbalance == theirs.imbalance
            for ours, theirs in zip(got.records, want.records)
        )

    class _MidRunFault:
        """Fire ``action`` right before deciding epoch ``at_epoch``;
        deep-copy-safe the same way the E17 kill wrapper is."""

        name = "service-faults"

        def __init__(self, inner, at_epoch, action):
            self.inner = inner
            self.at_epoch = at_epoch
            self.action = action
            self.fired = False

        def __deepcopy__(self, memo):
            return self

        def decide(self, instance, epoch):
            if epoch == self.at_epoch and not self.fired:
                self.fired = True
                self.action()
            return self.inner.decide(instance, epoch)

    traj_shard = "bench-traj"

    def traj_leg(fault: str | None):
        processes = [spawn_serve_process(), spawn_serve_process()]
        try:
            specs = tuple(
                BackendSpec(f"backend-{i}", p.host, p.port)
                for i, p in enumerate(processes)
            )
            config = RouterConfig(backends=specs)
            owner, standby = HashRing(
                tuple(s.name for s in specs)
            ).owners(traj_shard, 2)
            with start_sharded_router(config, workers) as sharded:
                policy = ServicePolicy(
                    sharded.host, sharded.port, k=traj_k,
                    shard=traj_shard, protocol="binary", delta=True,
                    retries=8,
                )

                def kill_owner():
                    processes[int(owner.rsplit("-", 1)[1])].kill()

                def migrate_to_standby():
                    with ServiceClient(sharded.host, sharded.port,
                                       retries=4) as probe:
                        moved = probe.call(
                            {"op": "migrate", "shard": traj_shard,
                             "target": standby},
                            shard=traj_shard,
                        )
                        assert moved.get("ok"), moved

                action = {"kill9": kill_owner,
                          "migrate": migrate_to_standby}.get(fault)
                wrapped = (
                    policy if action is None
                    else _MidRunFault(policy, traj_epochs // 2, action)
                )
                try:
                    got = simulation(wrapped).run(traj_epochs)
                finally:
                    policy.close()
                with ServiceClient(sharded.host, sharded.port,
                                   timeout=30.0) as probe:
                    counters = (
                        probe.status()["router"]["metrics"]["counters"]
                    )
            return identical(got), counters
        finally:
            for proc in processes:
                proc.terminate()

    traj_plain, plain_counters = traj_leg(None)
    log(f"[E19] plain trajectory identical through {workers}-worker "
        f"data plane: {traj_plain} "
        f"({plain_counters.get('router.resident_deltas', 0)} passthrough "
        f"deltas)")
    traj_kill, kill_counters = traj_leg("kill9")
    log(f"[E19] kill -9 backend mid-run: identical {traj_kill}, deaths "
        f"{kill_counters.get('router.backend_deaths', 0)}")
    traj_migrate, migrate_counters = traj_leg("migrate")
    log(f"[E19] live migration mid-run: identical {traj_migrate}, "
        f"migrations {migrate_counters.get('router.migrations', 0)}")

    # -- client-side CPU: reusable frame encoder A/B -------------------
    # One discard run absorbs interpreter/numpy warmup, then the sides
    # alternate and each takes its *min* CPU over ``enc_reps`` — the
    # per-epoch meta-encode saving is small against run noise, so a
    # single-shot comparison would gate on GC luck, not the code path.
    enc_reps = params.get("enc_reps", 3)
    enc_proc = spawn_serve_process()
    try:
        enc_config = ChurnStreamConfig(
            shard="e19-enc", shards=enc_shards, k=16,
            num_sites=enc_sites, num_servers=16, churn=enc_churn,
            epochs=enc_epochs, warmup_epochs=3, seed=seed,
            use_encoder=True,
        )
        run_churn_stream(
            enc_proc.host, enc_proc.port,
            replace(enc_config, epochs=min(20, enc_epochs)),
        )
        cpu_on: list[float] = []
        cpu_off: list[float] = []
        enc_on = enc_off = None
        for _ in range(enc_reps):
            enc_off = run_churn_stream(
                enc_proc.host, enc_proc.port,
                replace(enc_config, use_encoder=False),
            )
            enc_on = run_churn_stream(
                enc_proc.host, enc_proc.port, enc_config
            )
            cpu_off.append(enc_off.client_cpu_s)
            cpu_on.append(enc_on.client_cpu_s)
    finally:
        enc_proc.terminate()
    best_on, best_off = min(cpu_on), min(cpu_off)
    enc_ratio = best_off / max(best_on, 1e-9)
    enc_identical = enc_on.trajectories == enc_off.trajectories
    log(f"[E19] encoder A/B over {enc_shards * enc_epochs} epochs x "
        f"{enc_reps} reps: client CPU {best_on:.3f}s (encoder) vs "
        f"{best_off:.3f}s (dict rebuild) -> {enc_ratio:.2f}x, "
        f"byte-identical {enc_identical}")

    p99_bounded = multi.p99_ms <= p99_tolerance * single.p99_ms
    metrics = {
        "cores": cores,
        "workers": workers,
        "scaling_ratio": ratio,
        "min_ratio": min_ratio,
        "scaleout_ok": bool(ratio >= min_ratio),
        "goodput_single_per_s": single.goodput_per_s,
        "goodput_multi_per_s": multi.goodput_per_s,
        "p99_single_ms": single.p99_ms,
        "p99_multi_ms": multi.p99_ms,
        "p99_bounded": bool(p99_bounded),
        "scaling_clean": bool(
            single.errors == 0 and multi.errors == 0
            and _accounted(single) and _accounted(multi)
        ),
        "relay_path_used": bool(
            multi_counters.get("router.relayed_fulls", 0) > 0
        ),
        "traj_plain_identical": bool(traj_plain),
        "traj_kill9_identical": bool(traj_kill),
        "traj_migrate_identical": bool(traj_migrate),
        "kill9_deaths": kill_counters.get("router.backend_deaths", 0),
        "migrations": migrate_counters.get("router.migrations", 0),
        "encoder_cpu_ratio": enc_ratio,
        "encoder_not_slower": bool(best_on <= 1.1 * best_off),
        "encoder_trajectory_identical": bool(enc_identical),
        "encoder_clean": bool(
            enc_on.errors == 0 and enc_off.errors == 0
            and enc_on.fp_mismatches == 0 and enc_off.fp_mismatches == 0
        ),
    }
    detail = {
        "capacity_pin": {
            "relay_concurrency": relay_concurrency,
            "relay_delay_ms": relay_delay_ms,
            "relay_queue": relay_queue,
            "per_worker_capacity_per_s": per_worker_capacity,
            "offered_rate_per_s": rate,
            "overload_vs_multi_aggregate": overload,
            "cores": cores,
            "note": "per-worker capacity is pinned by the relay gate "
                    "(permits / (delay + service)); the 1-to-N goodput "
                    "ratio is host-core-independent by construction",
        },
        "workload": {
            "sites": sites, "servers": servers, "k": k,
            "shards": shards, "shard_base": shard_base,
            "duration_s": duration_s, "deadline_ms": deadline_ms,
            "connections": connections,
        },
        "single_worker": {**_leg_record(single),
                          "router_counters": single_counters},
        "multi_worker": {**_leg_record(multi),
                         "router_counters": multi_counters},
        "trajectories": {
            "epochs": traj_epochs, "k": traj_k, "sites": traj_sites,
            "servers": traj_servers,
            "plain_counters": plain_counters,
            "kill9_counters": kill_counters,
            "migrate_counters": migrate_counters,
        },
        "encoder_ab": {
            "sites": enc_sites, "churn": enc_churn,
            "epochs": enc_epochs, "shards": enc_shards,
            "reps": enc_reps,
            "client_cpu_s_encoder": cpu_on,
            "client_cpu_s_dict": cpu_off,
            "encoder": _leg_record(enc_on),
            "dict_rebuild": _leg_record(enc_off),
        },
    }
    return metrics, detail


BENCH_RUNNERS: dict[str, Callable[[dict, Log], tuple[dict, dict]]] = {
    "e13-kernels": bench_e13,
    "e14-service": bench_e14,
    "e15-wire": bench_e15,
    "e16-shm": bench_e16,
    "e17-cluster": bench_e17,
    "e18-scale": bench_e18,
    "e19-dataplane": bench_e19,
}
