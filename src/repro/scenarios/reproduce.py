"""``python -m repro reproduce``: one command, every result.

Help text, the scenario listing and ID validation are all derived from
the catalog registry — a scenario added to
:data:`repro.scenarios.catalog.CATALOG` appears here with zero CLI
changes (the ``ALL_RUNNABLE`` pattern from :mod:`repro.cli`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .catalog import CATALOG, scenario_ids
from .drift import DriftError
from .records import RecordError
from .runner import run_scenario
from .spec import TIERS

__all__ = ["main"]


def _scenario_lines() -> str:
    lines = []
    for scenario_id, scenario in CATALOG.items():
        kinds = "+".join(
            kind for kind, present in
            (("table", scenario.table), ("bench", scenario.bench))
            if present
        )
        lines.append(f"  {scenario_id:<4} [{kinds}] {scenario.title}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro reproduce",
        description="Regenerate E-tables and BENCH records from the "
                    "declarative scenario catalog.",
        epilog="scenarios:\n" + _scenario_lines(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    which = parser.add_mutually_exclusive_group()
    which.add_argument("--all", action="store_true",
                       help="run every catalog scenario")
    which.add_argument("--scenario", action="append", metavar="ID",
                       help="run one scenario (repeatable); valid IDs: "
                            + ", ".join(scenario_ids()))
    which.add_argument("--list", action="store_true",
                       help="list catalog scenarios and exit")
    parser.add_argument("--tier", choices=TIERS, default="ci",
                        help="parameter tier: 'ci' is scaled down with the "
                             "same invariants, 'full' is canonical "
                             "(default: ci)")
    parser.add_argument("--check", action="store_true",
                        help="drift-compare fresh runs against the tracked "
                             "records in benchmarks/records/<tier>/")
    parser.add_argument("--record", action="store_true",
                        help="write fresh runs to the tracked records tree")
    parser.add_argument("--records-root", type=Path, default=None,
                        help="records tree root (default: "
                             "benchmarks/records of this checkout)")
    parser.add_argument("--drift-report", type=Path, default=None,
                        metavar="PATH",
                        help="write a machine-readable JSON drift/acceptance "
                             "report here (CI uploads it on failure)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(_scenario_lines())
        return 0

    if args.scenario:
        unknown = [s for s in args.scenario if s.upper() not in CATALOG]
        if unknown:
            parser.error(
                f"unknown scenario(s) {', '.join(unknown)}; valid "
                f"scenarios: {', '.join(scenario_ids())}"
            )
        chosen = [s.upper() for s in args.scenario]
    elif args.all:
        chosen = list(scenario_ids())
    else:
        parser.error("choose --all, --scenario ID or --list")

    results = []
    failures: list[str] = []
    for scenario_id in chosen:
        print(f"\n=== {scenario_id} [{args.tier}] "
              f"{CATALOG[scenario_id].title} ===")
        try:
            result = run_scenario(
                scenario_id, args.tier, record=args.record, check=args.check,
                records_root=args.records_root,
            )
        except (RecordError, DriftError) as exc:
            print(f"{scenario_id} [{args.tier}]: {exc}", file=sys.stderr)
            failures.append(f"{scenario_id}: {exc}")
            results.append({
                "scenario": scenario_id, "tier": args.tier, "ok": False,
                "error": str(exc),
            })
            continue
        results.append({
            "scenario": scenario_id,
            "tier": args.tier,
            "ok": result.ok,
            "acceptance": result.record["acceptance"],
            "drift": result.drift.as_dict() if result.drift else None,
        })
        if not result.ok:
            failures.append(result.failure_summary())

    if args.drift_report is not None:
        args.drift_report.parent.mkdir(parents=True, exist_ok=True)
        args.drift_report.write_text(json.dumps({
            "tier": args.tier,
            "ok": not failures,
            "scenarios": results,
        }, indent=2, sort_keys=True) + "\n")

    print(f"\n{len(chosen)} scenario(s), {len(failures)} failure(s)")
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
