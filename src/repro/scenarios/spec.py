"""Declarative scenario specs: the axes a scenario composes.

A scenario is a *configuration*, not a script: a workload axis (what
instances look like — sizes, costs, churn, dimensionality,
stochasticity), a traffic axis (how they evolve and arrive — steady,
diurnal drift, flash crowds, churn streams, failure injection), and a
solver/transport axis (what decides and how the bytes move — solver
family, DP backend, engine mode, wire protocol, executor, router fan-
out).  The catalog (:mod:`repro.scenarios.catalog`) instantiates one
:class:`Scenario` per experiment; the runner
(:mod:`repro.scenarios.runner`) turns a scenario plus a *tier* into a
schema-versioned record with machine-readable acceptance assertions;
the drift comparator (:mod:`repro.scenarios.drift`) gates fresh runs
against recorded ones per the scenario's :class:`DriftPolicy`.

Nothing here executes anything — these dataclasses are pure data, and
they are serialized into every record so a record file documents the
exact composition that produced it.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

__all__ = [
    "Check",
    "DriftPolicy",
    "Scenario",
    "TIERS",
    "TrafficAxis",
    "TransportAxis",
    "WorkloadAxis",
]

TIERS = ("ci", "full")


@dataclass(frozen=True)
class WorkloadAxis:
    """What the instances are made of.

    ``family`` names the generator idiom ("random", "tightness",
    "planted", "unit", "gadget", "websim-cluster", "calibrated",
    "zipf-churn"); ``calibration`` optionally names an entry in
    :data:`repro.service.loadgen.CALIBRATIONS` for workloads whose
    size is pinned to host speed rather than fixed.  ``dims`` and
    ``stochastic`` are forward-declared axes for the vector-load and
    stochastic-size scenarios the ROADMAP plans — today every scenario
    runs ``dims=1, stochastic=False``, and the fields exist so those
    follow-ons are a new catalog entry, not a new subsystem.
    """

    family: str
    num_sites: int | None = None
    num_servers: int | None = None
    k: int | None = None
    seed: int | None = None
    sizes: str = "mixed"
    costs: str = "unit"
    dims: int = 1
    stochastic: bool = False
    calibration: str | None = None


@dataclass(frozen=True)
class TrafficAxis:
    """How load evolves and arrives.

    ``kind`` is the epoch-evolution model ("none" for static one-shot
    instances, "diurnal+flash", "flash", "steady", "churn",
    "paced-churn"); ``arrival`` distinguishes closed-loop epoch walks
    from the open-loop generator; ``failure`` names an injected fault
    ("kill9@midrun" arms a SIGKILL of a backend halfway through the
    window); ``autoscale`` marks scenarios that grow/shrink the server
    fleet mid-run (none yet — the router HA follow-on's slot).
    """

    kind: str = "none"
    arrival: str = "epoch-loop"  # "epoch-loop" | "open-loop" | "paced"
    epochs: int | None = None
    failure: str | None = None
    autoscale: bool = False


@dataclass(frozen=True)
class TransportAxis:
    """What decides and how the bytes move."""

    solver: str = "m-partition"
    backend: str = "kernel"      # DP backend: "kernel" | "reference" | "both"
    engine: str = "scratch"      # "scratch" | "warm" | "incremental" | "both"
    wire: str = "none"           # "none" | "v1" | "v2" | "v2+delta" | "both"
    executor: str = "inline"     # "inline" | "thread" | "process" |
                                 # "process+shm" | "both"
    router_backends: int = 0     # backend processes behind a router
    router_workers: int | str = 0  # data-plane worker processes
                                   # ("1..N" for E19's scaling sweep)


@dataclass(frozen=True)
class Check:
    """One machine-readable acceptance assertion on a record's metrics.

    ``metric`` is a key of the record's flat ``metrics`` dict, or
    ``table.all:<column>`` / ``table.any:<column>`` to quantify over a
    table column.  ``op`` is one of ``>= <= > < == != truthy``.
    """

    metric: str
    op: str
    value: Any = None

    _OPS = ("truthy", ">=", "<=", ">", "<", "==", "!=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown check op {self.op!r}")

    def describe(self) -> str:
        if self.op == "truthy":
            return f"{self.metric} is truthy"
        return f"{self.metric} {self.op} {self.value!r}"

    def evaluate(self, metrics: Mapping[str, Any], table: Mapping | None
                 ) -> tuple[bool, Any]:
        """Return ``(ok, observed)``; a missing metric is a failure."""
        got = _lookup(self.metric, metrics, table)
        if got is _MISSING:
            return False, None
        if self.op == "truthy":
            return bool(got), got
        if isinstance(got, float) and math.isnan(got):
            return False, got
        try:
            ok = {
                ">=": lambda a, b: a >= b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                "<": lambda a, b: a < b,
                "==": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
            }[self.op](got, self.value)
        except TypeError:
            return False, got
        return bool(ok), got


_MISSING = object()


def _lookup(metric: str, metrics: Mapping[str, Any], table: Mapping | None):
    if metric.startswith(("table.all:", "table.any:")):
        if not table:
            return _MISSING
        column = metric.split(":", 1)[1]
        try:
            idx = list(table["columns"]).index(column)
        except ValueError:
            return _MISSING
        cells = [row[idx] for row in table["rows"]]
        if not cells:
            return _MISSING
        quant = all if metric.startswith("table.all:") else any
        return quant(bool(c) for c in cells)
    return metrics.get(metric, _MISSING)


@dataclass(frozen=True)
class DriftPolicy:
    """Which recorded fields gate a fresh run, and how tightly.

    * ``exact`` — metric keys compared exactly (floats within 1e-9
      relative: byte-identity flags, error counts, deterministic
      ratios and counters).
    * ``band`` — metric key → multiplicative tolerance factor
      (``2.0`` = fresh within 2x of recorded, either way): latency,
      goodput and anything else that tracks host speed.
    * ``table_exact_columns`` — table columns compared cell by cell
      (timing columns are left out and never gate).

    Metric keys present in the record but in neither list are
    *informational*: the comparator still checks they exist on both
    sides (a vanished or new metric is a schema drift worth failing
    on) but never compares their values.
    """

    exact: tuple[str, ...] = ()
    band: Mapping[str, float] = field(default_factory=dict)
    table_exact_columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class Scenario:
    """One catalog entry: axes + runners + acceptance + drift policy.

    ``table`` names an experiment in the analysis registry (the
    E-table this scenario regenerates); ``bench`` names an acceptance
    runner in :data:`repro.scenarios.benches.BENCH_RUNNERS` (the
    BENCH_* record it regenerates).  Either may be absent; E1–E12 are
    table-only, E18 is bench-only, E13–E17 produce both.

    ``params`` holds the base keyword arguments per namespace
    (``{"table": {...}, "bench": {...}}``); ``tiers`` overlays
    per-tier overrides on top (same shape).  The ``ci`` tier is the
    scaled-down-but-same-invariants configuration the CI drift gate
    runs; ``full`` is the canonical scale recorded in EXPERIMENTS.md.
    """

    scenario_id: str
    title: str
    workload: WorkloadAxis
    traffic: TrafficAxis
    transport: TransportAxis
    table: str | None = None
    bench: str | None = None
    params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    tiers: Mapping[str, Mapping[str, Mapping[str, Any]]] = field(
        default_factory=dict
    )
    table_tiers: tuple[str, ...] = TIERS
    acceptance: tuple[Check, ...] = ()
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    bench_json: str | None = None  # compat BENCH_*.json working-copy name
    description: str = ""

    def __post_init__(self) -> None:
        if self.table is None and self.bench is None:
            raise ValueError(
                f"scenario {self.scenario_id}: needs a table or a bench"
            )
        for tier in self.tiers:
            if tier not in TIERS:
                raise ValueError(
                    f"scenario {self.scenario_id}: unknown tier {tier!r}"
                )
        for tier in self.table_tiers:
            if tier not in TIERS:
                raise ValueError(
                    f"scenario {self.scenario_id}: unknown table tier {tier!r}"
                )

    def runs_table(self, tier: str) -> bool:
        """Whether this scenario regenerates its E-table at ``tier``.

        Service-heavy tables (E13–E17) run only in the ``full`` tier;
        their invariants are covered at ``ci`` scale by the bench
        runner, which is what the old CI executed.
        """
        return self.table is not None and tier in self.table_tiers

    def resolve(self, tier: str, overrides: Mapping | None = None
                ) -> dict[str, dict[str, Any]]:
        """Merge base params, tier overlays and explicit overrides into
        ``{"table": kwargs, "bench": kwargs}``."""
        if tier not in TIERS:
            raise ValueError(
                f"unknown tier {tier!r}; valid tiers: {', '.join(TIERS)}"
            )
        merged: dict[str, dict[str, Any]] = {"table": {}, "bench": {}}
        for layer in (self.params, self.tiers.get(tier, {}), overrides or {}):
            for namespace, kwargs in layer.items():
                if namespace not in merged:
                    raise ValueError(
                        f"scenario {self.scenario_id}: unknown param "
                        f"namespace {namespace!r}"
                    )
                merged[namespace].update(kwargs)
        return merged

    def axes_dict(self) -> dict[str, Any]:
        """The composition, serialized into every record."""
        return {
            "workload": asdict(self.workload),
            "traffic": asdict(self.traffic),
            "transport": asdict(self.transport),
        }
