"""ScenarioCatalog: declarative scenario configs + one-command repro.

Every reproducible result — the E1–E18 experiment tables and the
BENCH acceptance records — is described by one declarative
:class:`~repro.scenarios.spec.Scenario` in
:data:`~repro.scenarios.catalog.CATALOG`, composing a workload axis,
a traffic axis and a solver/transport axis with tier-resolved params,
machine-readable acceptance checks and a per-metric drift policy.

``python -m repro reproduce [--all | --scenario ID] [--check]
[--record] [--tier ci|full]`` interprets the catalog; fresh runs are
gated against the tracked ``benchmarks/records/<tier>/`` tree by
:func:`~repro.scenarios.drift.compare_records`.
"""

from .benches import BENCH_RUNNERS
from .catalog import CATALOG, get_scenario, scenario_ids
from .drift import (
    DriftError,
    DriftIssue,
    DriftReport,
    ExactMismatch,
    ExtraMetric,
    MissingMetric,
    SchemaVersionMismatch,
    TableMismatch,
    ToleranceExceeded,
    compare_records,
)
from .records import (
    SCHEMA,
    SCHEMA_VERSION,
    RecordError,
    default_records_root,
    load_record,
    record_path,
    write_record,
)
from .runner import ScenarioResult, run_scenario
from .spec import (
    TIERS,
    Check,
    DriftPolicy,
    Scenario,
    TrafficAxis,
    TransportAxis,
    WorkloadAxis,
)

__all__ = [
    "BENCH_RUNNERS",
    "CATALOG",
    "Check",
    "DriftError",
    "DriftIssue",
    "DriftPolicy",
    "DriftReport",
    "ExactMismatch",
    "ExtraMetric",
    "MissingMetric",
    "RecordError",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioResult",
    "SchemaVersionMismatch",
    "TIERS",
    "TableMismatch",
    "ToleranceExceeded",
    "TrafficAxis",
    "TransportAxis",
    "WorkloadAxis",
    "compare_records",
    "default_records_root",
    "get_scenario",
    "load_record",
    "record_path",
    "run_scenario",
    "scenario_ids",
    "write_record",
]
