"""Command-line entry point: ``python -m repro [experiment ...]``.

Runs the named experiments (default: all) and prints their tables.
``python -m repro --list`` shows what is available; ``--workers N``
fans independent experiments out over worker processes (output order
and content are identical to a serial run).

Subcommands short-circuit the experiment runner:
``python -m repro serve`` starts the rebalancing server,
``python -m repro router`` starts the cluster-tier coordinator,
``python -m repro loadgen`` drives either (see :mod:`repro.service.cli`),
and ``python -m repro reproduce`` regenerates and drift-checks every
result through the scenario catalog (see :mod:`repro.scenarios`).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import telemetry
from .analysis.ablations import ALL_ABLATIONS
from .analysis.experiments import ALL_EXPERIMENTS
from .parallel import run_sweep

ALL_RUNNABLE = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}

SERVICE_COMMANDS = ("serve", "loadgen", "router")


def _runnable_span() -> str:
    """Compact id summary for ``--help``, derived from the registry so
    it never goes stale: ``"E1..E15, A1..A3"``."""
    groups: dict[str, list[str]] = {}
    for key in ALL_RUNNABLE:
        groups.setdefault(key.rstrip("0123456789"), []).append(key)
    return ", ".join(
        keys[0] if len(keys) == 1 else f"{keys[0]}..{keys[-1]}"
        for keys in groups.values()
    )


def _run_one_experiment(payload: tuple[str, bool]) -> tuple:
    """Run one experiment; module-level so worker processes can run it.

    Telemetry is collected *inside* the payload (not via the sweep
    runner's merge) so per-experiment breakdowns survive fan-out.
    """
    key, profile = payload
    fn = ALL_RUNNABLE[key]
    start = time.perf_counter()
    if profile:
        with telemetry.collect() as collector:
            report = fn()
        tel = collector.as_dict()
    else:
        report = fn()
        tel = None
    return key, report, time.perf_counter() - start, tel


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "reproduce":
        from .scenarios.reproduce import main as reproduce_main

        return reproduce_main(argv[1:])
    if argv and argv[0] in SERVICE_COMMANDS:
        from .service.cli import loadgen_main, router_main, serve_main

        handler = {
            "serve": serve_main,
            "loadgen": loadgen_main,
            "router": router_main,
        }[argv[0]]
        return handler(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the load-rebalancing reproduction "
        "experiments.  Subcommands 'serve' and 'loadgen' run the "
        "rebalancing service, and 'reproduce' regenerates and "
        "drift-checks every result through the scenario catalog "
        "(each has its own --help).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiment ids ({_runnable_span()}); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect solver telemetry and print a per-phase timing "
        "table after each experiment",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run the selected experiments across N worker processes "
        "(0 = one per CPU core); tables print in the order given, "
        "identical to a serial run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, fn in ALL_RUNNABLE.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{key}: {doc[0] if doc else fn.__name__}")
        return 0

    chosen = args.experiments or list(ALL_RUNNABLE)
    unknown = [e for e in chosen if e.upper() not in ALL_RUNNABLE]
    if unknown:
        parser.error(f"unknown experiments {unknown}; try --list")

    workers = args.workers if args.workers > 0 else None
    payloads = [(key.upper(), args.profile) for key in chosen]
    for key, report, elapsed, tel in run_sweep(
        _run_one_experiment, payloads, workers=workers
    ):
        print(report.render())
        print(f"  ({elapsed:.2f}s)\n")
        if tel is not None:
            print(
                telemetry.render_table(
                    tel, title=f"telemetry — {key} per-phase breakdown"
                )
            )
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
