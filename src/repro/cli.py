"""Command-line entry point: ``python -m repro [experiment ...]``.

Runs the named experiments (default: all of E1–E10) and prints their
tables.  ``python -m repro --list`` shows what is available.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import telemetry
from .analysis.ablations import ALL_ABLATIONS
from .analysis.experiments import ALL_EXPERIMENTS

ALL_RUNNABLE = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the load-rebalancing reproduction experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (E1..E12, A1..A3); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect solver telemetry and print a per-phase timing "
        "table after each experiment",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, fn in ALL_RUNNABLE.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{key}: {doc[0] if doc else fn.__name__}")
        return 0

    chosen = args.experiments or list(ALL_RUNNABLE)
    unknown = [e for e in chosen if e.upper() not in ALL_RUNNABLE]
    if unknown:
        parser.error(f"unknown experiments {unknown}; try --list")

    for key in chosen:
        fn = ALL_RUNNABLE[key.upper()]
        start = time.perf_counter()
        if args.profile:
            with telemetry.collect() as collector:
                report = fn()
        else:
            collector = None
            report = fn()
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"  ({elapsed:.2f}s)\n")
        if collector is not None:
            print(
                telemetry.render_table(
                    collector.as_dict(),
                    title=f"telemetry — {key.upper()} per-phase breakdown",
                )
            )
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
