"""Command-line entry point: ``python -m repro [experiment ...]``.

Runs the named experiments (default: all of E1–E10) and prints their
tables.  ``python -m repro --list`` shows what is available;
``--workers N`` fans independent experiments out over worker processes
(output order and content are identical to a serial run).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import telemetry
from .analysis.ablations import ALL_ABLATIONS
from .analysis.experiments import ALL_EXPERIMENTS
from .parallel import run_sweep

ALL_RUNNABLE = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}


def _run_one_experiment(payload: tuple[str, bool]) -> tuple:
    """Run one experiment; module-level so worker processes can run it.

    Telemetry is collected *inside* the payload (not via the sweep
    runner's merge) so per-experiment breakdowns survive fan-out.
    """
    key, profile = payload
    fn = ALL_RUNNABLE[key]
    start = time.perf_counter()
    if profile:
        with telemetry.collect() as collector:
            report = fn()
        tel = collector.as_dict()
    else:
        report = fn()
        tel = None
    return key, report, time.perf_counter() - start, tel


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the load-rebalancing reproduction experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (E1..E13, A1..A3); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect solver telemetry and print a per-phase timing "
        "table after each experiment",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run the selected experiments across N worker processes "
        "(0 = one per CPU core); tables print in the order given, "
        "identical to a serial run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, fn in ALL_RUNNABLE.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{key}: {doc[0] if doc else fn.__name__}")
        return 0

    chosen = args.experiments or list(ALL_RUNNABLE)
    unknown = [e for e in chosen if e.upper() not in ALL_RUNNABLE]
    if unknown:
        parser.error(f"unknown experiments {unknown}; try --list")

    workers = args.workers if args.workers > 0 else None
    payloads = [(key.upper(), args.profile) for key in chosen]
    for key, report, elapsed, tel in run_sweep(
        _run_one_experiment, payloads, workers=workers
    ):
        print(report.render())
        print(f"  ({elapsed:.2f}s)\n")
        if tel is not None:
            print(
                telemetry.render_table(
                    tel, title=f"telemetry — {key} per-phase breakdown"
                )
            )
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
