"""Zero-dependency instrumentation for the rebalancing solvers.

Production-scale rebalancing cannot be steered without measurement:
knowing *where* a solver spends its time (threshold scan vs
construction, LP vs rounding, decide vs migrate) and *how much* work it
does (heap pops, thresholds tried, knapsack DP cells) is what turns the
paper's asymptotic claims into observable behavior.  This module
provides the shared instrumentation layer every solver threads through:

* :func:`span` — a context-manager timer aggregating wall-clock time
  per named phase (``calls`` and total ``seconds``);
* :func:`count` — monotonic counters (``thresholds_tried``,
  ``heap_pops``, ``knapsack_cells``, ...);
* :func:`observe` — distribution samples (request latencies, batch
  sizes) aggregated into mergeable log-bucketed :class:`Histogram`
  objects with ``p50/p95/p99`` quantile queries;
* :func:`collect` — a context manager installing a thread-local
  :class:`Collector`; collection is **off by default** and every
  instrumentation call is a no-op until a collector is installed, so
  the disabled cost is a single attribute lookup per solver call (the
  hot inner loops accumulate plain local integers either way);
* :class:`Collector` — the thread-local sink, exportable with
  :meth:`Collector.as_dict` / :meth:`Collector.to_json` and renderable
  as a terminal table with :func:`render_table`.

Solvers attach their own slice of the telemetry to
``RebalanceResult.meta["telemetry"]`` via the :func:`mark` /
:func:`attach` pair, which snapshots the collector at solver entry and
stores the delta at exit — so one :func:`collect` block around many
solver calls still yields per-call breakdowns.

Usage::

    from repro import telemetry

    with telemetry.collect() as tel:
        result = m_partition_rebalance(instance, k)
    print(telemetry.render_table(tel.as_dict()))
    result.meta["telemetry"]       # this call's spans and counters
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any

__all__ = [
    "Collector",
    "Histogram",
    "attach",
    "collect",
    "count",
    "current",
    "enabled",
    "mark",
    "observe",
    "record",
    "render_table",
    "span",
]

_state = threading.local()


class Histogram:
    """Mergeable log-bucketed histogram of non-negative samples.

    Samples land in geometric buckets (``base ** i`` upper edges, base
    ``2 ** (1/8)`` ≈ 9% relative width), so two histograms recorded in
    different processes merge exactly by adding bucket counts — the
    property :meth:`Collector.merge` needs to carry latency percentiles
    across worker fan-out.  Quantiles come back as the upper edge of the
    bucket holding the target rank, clamped to the observed ``[min,
    max]`` range, so :meth:`quantile` is exact at the extremes and
    within one bucket width (< 10% relative) everywhere else.

    Zero (and, defensively, negative) samples are tallied in a
    dedicated zero bucket so a latency distribution with clock-res
    zeros still has well-defined quantiles.
    """

    _BASE = 2.0 ** 0.125
    _LOG_BASE = math.log(_BASE)

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self.buckets: dict[int, int] = {}

    # -- recording -----------------------------------------------------
    def record(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        idx = math.ceil(math.log(value) / self._LOG_BASE - 1e-9)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    # -- queries -------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the recorded samples.

        ``nan`` when empty; exact for ``q=0``/``q=1`` (tracked min/max),
        otherwise the upper edge of the covering bucket clamped into
        ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        seen = self.zeros
        if seen >= rank:
            return max(self.min, 0.0) if self.min < math.inf else 0.0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return min(max(self._BASE ** idx, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    # -- merge / export ------------------------------------------------
    def merge(self, other: "Histogram | dict[str, Any]") -> None:
        """Fold another histogram (object or :meth:`as_dict` form) in."""
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zeros += other.zeros
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def as_dict(self) -> dict[str, Any]:
        """JSON-trivial form (bucket keys become strings)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`as_dict`."""
        hist = cls()
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        hist.min = float(data["min"]) if data.get("min") is not None else math.inf
        hist.max = float(data["max"]) if data.get("max") is not None else -math.inf
        hist.zeros = int(data.get("zeros", 0))
        hist.buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        return hist


def current() -> "Collector | None":
    """The collector installed on this thread, or ``None``."""
    return getattr(_state, "collector", None)


def enabled() -> bool:
    """Whether telemetry collection is active on this thread."""
    return getattr(_state, "collector", None) is not None


class Collector:
    """Thread-local sink for spans, counters, and histograms.

    ``spans`` maps a phase name to ``[calls, seconds]``; ``counters``
    maps a counter name to its running total; ``histograms`` maps a
    distribution name to a :class:`Histogram`.  All are plain dicts so
    export is allocation-light and JSON-trivial.
    """

    __slots__ = ("spans", "counters", "histograms")

    def __init__(self) -> None:
        self.spans: dict[str, list[float]] = {}
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------
    def record_span(self, name: str, seconds: float) -> None:
        """Aggregate one completed span observation."""
        stat = self.spans.get(name)
        if stat is None:
            self.spans[name] = [1, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds

    def add(self, name: str, n: int = 1) -> None:
        """Increment a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    # -- snapshots -----------------------------------------------------
    def mark(self) -> dict[str, Any]:
        """An opaque snapshot of the current totals (for :meth:`since`)."""
        return {
            "spans": {k: (v[0], v[1]) for k, v in self.spans.items()},
            "counters": dict(self.counters),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def since(self, mark: dict[str, Any]) -> dict[str, Any]:
        """The delta accumulated after ``mark``, in :meth:`as_dict` form.

        Histogram deltas subtract bucket counts; their ``min``/``max``
        are the running extremes (exact deltas are unrecoverable from
        totals), which only widens — never narrows — the delta's range.
        """
        spans = {}
        base_spans = mark["spans"]
        for name, (calls, seconds) in self.spans.items():
            c0, s0 = base_spans.get(name, (0, 0.0))
            if calls > c0:
                spans[name] = {"calls": calls - c0, "seconds": seconds - s0}
        counters = {}
        base_counters = mark["counters"]
        for name, value in self.counters.items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        base_hists = mark.get("histograms", {})
        for name, hist in self.histograms.items():
            base = base_hists.get(name)
            if base is None:
                if hist.count:
                    histograms[name] = hist.as_dict()
                continue
            if hist.count == base["count"]:
                continue
            delta_h = hist.as_dict()
            delta_h["count"] -= base["count"]
            delta_h["sum"] -= base["sum"]
            delta_h["zeros"] -= base["zeros"]
            buckets = {
                k: v - base["buckets"].get(k, 0)
                for k, v in delta_h["buckets"].items()
            }
            delta_h["buckets"] = {k: v for k, v in buckets.items() if v}
            histograms[name] = delta_h
        out: dict[str, Any] = {"spans": spans, "counters": counters}
        if histograms:
            out["histograms"] = histograms
        return out

    def merge(self, data: dict[str, Any]) -> None:
        """Fold an exported telemetry dict (:meth:`as_dict` form) in.

        Used by :mod:`repro.parallel` to aggregate worker-process
        telemetry into the parent's collector: span calls/seconds,
        counters, and histogram buckets are all additive.
        """
        for name, stat in data.get("spans", {}).items():
            cur = self.spans.get(name)
            if cur is None:
                self.spans[name] = [stat["calls"], stat["seconds"]]
            else:
                cur[0] += stat["calls"]
                cur[1] += stat["seconds"]
        for name, value in data.get("counters", {}).items():
            self.add(name, value)
        for name, hist_data in data.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(hist_data)

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """``{"spans": ..., "counters": ..., "histograms": ...}`` (the
        ``histograms`` key appears only when at least one exists)."""
        out: dict[str, Any] = {
            "spans": {
                k: {"calls": v[0], "seconds": v[1]} for k, v in self.spans.items()
            },
            "counters": dict(self.counters),
        }
        if self.histograms:
            out["histograms"] = {
                k: h.as_dict() for k, h in self.histograms.items()
            }
        return out

    def to_json(self, **kwargs: Any) -> str:
        """JSON form of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), **kwargs)


class _CollectContext:
    """Installs a fresh :class:`Collector` on the current thread."""

    __slots__ = ("_collector", "_previous")

    def __enter__(self) -> Collector:
        self._previous = getattr(_state, "collector", None)
        self._collector = Collector()
        _state.collector = self._collector
        return self._collector

    def __exit__(self, *exc: object) -> None:
        _state.collector = self._previous


def collect() -> _CollectContext:
    """Enable collection for the ``with`` block and yield the collector.

    Nested ``collect()`` blocks shadow the outer collector (the inner
    block sees only its own measurements); the outer collector is
    restored on exit.
    """
    return _CollectContext()


class _NoopSpan:
    """Shared do-nothing span handed out while collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: Collector, name: str) -> None:
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._collector.record_span(
            self._name, time.perf_counter() - self._start
        )


def span(name: str) -> "_NoopSpan | _LiveSpan":
    """A context-manager timer for the phase ``name``.

    Returns a shared no-op object while collection is disabled, so the
    disabled cost is one attribute lookup and no allocation.
    """
    collector = getattr(_state, "collector", None)
    if collector is None:
        return _NOOP
    return _LiveSpan(collector, name)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to the counter ``name`` (no-op while disabled)."""
    collector = getattr(_state, "collector", None)
    if collector is not None:
        collector.add(name, n)


def record(name: str, seconds: float) -> None:
    """Record an externally timed span observation (no-op while disabled)."""
    collector = getattr(_state, "collector", None)
    if collector is not None:
        collector.record_span(name, seconds)


def observe(name: str, value: float) -> None:
    """Record one histogram sample (no-op while disabled)."""
    collector = getattr(_state, "collector", None)
    if collector is not None:
        collector.observe(name, value)


def mark() -> dict[str, Any] | None:
    """Snapshot the active collector, or ``None`` while disabled.

    Pair with :func:`attach` to scope telemetry to one solver call.
    """
    collector = getattr(_state, "collector", None)
    return None if collector is None else collector.mark()


def attach(meta: dict[str, Any], marker: dict[str, Any] | None) -> dict[str, Any]:
    """Set ``meta["telemetry"]`` to the delta since ``marker``.

    No-op (and no key added) when collection is off or ``marker`` is
    ``None``; returns ``meta`` either way so it composes inline.
    """
    collector = getattr(_state, "collector", None)
    if collector is not None and marker is not None:
        meta["telemetry"] = collector.since(marker)
    return meta


def render_table(data: dict[str, Any], title: str = "telemetry") -> str:
    """Render an exported telemetry dict as an aligned terminal table."""
    lines = [title]
    spans = data.get("spans", {})
    if spans:
        name_w = max(len("span"), *(len(k) for k in spans))
        lines.append(
            f"  {'span':<{name_w}}  {'calls':>7}  {'total s':>9}  {'mean ms':>9}"
        )
        for name in sorted(spans, key=lambda k: -spans[k]["seconds"]):
            stat = spans[name]
            calls, seconds = stat["calls"], stat["seconds"]
            mean_ms = 1e3 * seconds / calls if calls else 0.0
            lines.append(
                f"  {name:<{name_w}}  {calls:>7d}  {seconds:>9.4f}  {mean_ms:>9.3f}"
            )
    counters = data.get("counters", {})
    if counters:
        name_w = max(len("counter"), *(len(k) for k in counters))
        lines.append(f"  {'counter':<{name_w}}  {'value':>12}")
        for name in sorted(counters):
            lines.append(f"  {name:<{name_w}}  {counters[name]:>12d}")
    histograms = data.get("histograms", {})
    if histograms:
        name_w = max(len("histogram"), *(len(k) for k in histograms))
        lines.append(
            f"  {'histogram':<{name_w}}  {'count':>7}  {'mean':>9}  "
            f"{'p50':>9}  {'p95':>9}  {'p99':>9}  {'max':>9}"
        )
        for name in sorted(histograms):
            hist = Histogram.from_dict(histograms[name])
            lines.append(
                f"  {name:<{name_w}}  {hist.count:>7d}  {hist.mean:>9.3f}  "
                f"{hist.quantile(0.5):>9.3f}  {hist.quantile(0.95):>9.3f}  "
                f"{hist.quantile(0.99):>9.3f}  {hist.max:>9.3f}"
            )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
