"""Zero-dependency instrumentation for the rebalancing solvers.

Production-scale rebalancing cannot be steered without measurement:
knowing *where* a solver spends its time (threshold scan vs
construction, LP vs rounding, decide vs migrate) and *how much* work it
does (heap pops, thresholds tried, knapsack DP cells) is what turns the
paper's asymptotic claims into observable behavior.  This module
provides the shared instrumentation layer every solver threads through:

* :func:`span` — a context-manager timer aggregating wall-clock time
  per named phase (``calls`` and total ``seconds``);
* :func:`count` — monotonic counters (``thresholds_tried``,
  ``heap_pops``, ``knapsack_cells``, ...);
* :func:`collect` — a context manager installing a thread-local
  :class:`Collector`; collection is **off by default** and every
  instrumentation call is a no-op until a collector is installed, so
  the disabled cost is a single attribute lookup per solver call (the
  hot inner loops accumulate plain local integers either way);
* :class:`Collector` — the thread-local sink, exportable with
  :meth:`Collector.as_dict` / :meth:`Collector.to_json` and renderable
  as a terminal table with :func:`render_table`.

Solvers attach their own slice of the telemetry to
``RebalanceResult.meta["telemetry"]`` via the :func:`mark` /
:func:`attach` pair, which snapshots the collector at solver entry and
stores the delta at exit — so one :func:`collect` block around many
solver calls still yields per-call breakdowns.

Usage::

    from repro import telemetry

    with telemetry.collect() as tel:
        result = m_partition_rebalance(instance, k)
    print(telemetry.render_table(tel.as_dict()))
    result.meta["telemetry"]       # this call's spans and counters
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

__all__ = [
    "Collector",
    "attach",
    "collect",
    "count",
    "current",
    "enabled",
    "mark",
    "record",
    "render_table",
    "span",
]

_state = threading.local()


def current() -> "Collector | None":
    """The collector installed on this thread, or ``None``."""
    return getattr(_state, "collector", None)


def enabled() -> bool:
    """Whether telemetry collection is active on this thread."""
    return getattr(_state, "collector", None) is not None


class Collector:
    """Thread-local sink for span timings and monotonic counters.

    ``spans`` maps a phase name to ``[calls, seconds]``; ``counters``
    maps a counter name to its running total.  Both are plain dicts so
    export is allocation-light and JSON-trivial.
    """

    __slots__ = ("spans", "counters")

    def __init__(self) -> None:
        self.spans: dict[str, list[float]] = {}
        self.counters: dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def record_span(self, name: str, seconds: float) -> None:
        """Aggregate one completed span observation."""
        stat = self.spans.get(name)
        if stat is None:
            self.spans[name] = [1, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds

    def add(self, name: str, n: int = 1) -> None:
        """Increment a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- snapshots -----------------------------------------------------
    def mark(self) -> dict[str, Any]:
        """An opaque snapshot of the current totals (for :meth:`since`)."""
        return {
            "spans": {k: (v[0], v[1]) for k, v in self.spans.items()},
            "counters": dict(self.counters),
        }

    def since(self, mark: dict[str, Any]) -> dict[str, Any]:
        """The delta accumulated after ``mark``, in :meth:`as_dict` form."""
        spans = {}
        base_spans = mark["spans"]
        for name, (calls, seconds) in self.spans.items():
            c0, s0 = base_spans.get(name, (0, 0.0))
            if calls > c0:
                spans[name] = {"calls": calls - c0, "seconds": seconds - s0}
        counters = {}
        base_counters = mark["counters"]
        for name, value in self.counters.items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        return {"spans": spans, "counters": counters}

    def merge(self, data: dict[str, Any]) -> None:
        """Fold an exported telemetry dict (:meth:`as_dict` form) in.

        Used by :mod:`repro.parallel` to aggregate worker-process
        telemetry into the parent's collector: span calls/seconds and
        counters are additive.
        """
        for name, stat in data.get("spans", {}).items():
            cur = self.spans.get(name)
            if cur is None:
                self.spans[name] = [stat["calls"], stat["seconds"]]
            else:
                cur[0] += stat["calls"]
                cur[1] += stat["seconds"]
        for name, value in data.get("counters", {}).items():
            self.add(name, value)

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """``{"spans": {name: {"calls", "seconds"}}, "counters": {...}}``."""
        return {
            "spans": {
                k: {"calls": v[0], "seconds": v[1]} for k, v in self.spans.items()
            },
            "counters": dict(self.counters),
        }

    def to_json(self, **kwargs: Any) -> str:
        """JSON form of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), **kwargs)


class _CollectContext:
    """Installs a fresh :class:`Collector` on the current thread."""

    __slots__ = ("_collector", "_previous")

    def __enter__(self) -> Collector:
        self._previous = getattr(_state, "collector", None)
        self._collector = Collector()
        _state.collector = self._collector
        return self._collector

    def __exit__(self, *exc: object) -> None:
        _state.collector = self._previous


def collect() -> _CollectContext:
    """Enable collection for the ``with`` block and yield the collector.

    Nested ``collect()`` blocks shadow the outer collector (the inner
    block sees only its own measurements); the outer collector is
    restored on exit.
    """
    return _CollectContext()


class _NoopSpan:
    """Shared do-nothing span handed out while collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: Collector, name: str) -> None:
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._collector.record_span(
            self._name, time.perf_counter() - self._start
        )


def span(name: str) -> "_NoopSpan | _LiveSpan":
    """A context-manager timer for the phase ``name``.

    Returns a shared no-op object while collection is disabled, so the
    disabled cost is one attribute lookup and no allocation.
    """
    collector = getattr(_state, "collector", None)
    if collector is None:
        return _NOOP
    return _LiveSpan(collector, name)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to the counter ``name`` (no-op while disabled)."""
    collector = getattr(_state, "collector", None)
    if collector is not None:
        collector.add(name, n)


def record(name: str, seconds: float) -> None:
    """Record an externally timed span observation (no-op while disabled)."""
    collector = getattr(_state, "collector", None)
    if collector is not None:
        collector.record_span(name, seconds)


def mark() -> dict[str, Any] | None:
    """Snapshot the active collector, or ``None`` while disabled.

    Pair with :func:`attach` to scope telemetry to one solver call.
    """
    collector = getattr(_state, "collector", None)
    return None if collector is None else collector.mark()


def attach(meta: dict[str, Any], marker: dict[str, Any] | None) -> dict[str, Any]:
    """Set ``meta["telemetry"]`` to the delta since ``marker``.

    No-op (and no key added) when collection is off or ``marker`` is
    ``None``; returns ``meta`` either way so it composes inline.
    """
    collector = getattr(_state, "collector", None)
    if collector is not None and marker is not None:
        meta["telemetry"] = collector.since(marker)
    return meta


def render_table(data: dict[str, Any], title: str = "telemetry") -> str:
    """Render an exported telemetry dict as an aligned terminal table."""
    lines = [title]
    spans = data.get("spans", {})
    if spans:
        name_w = max(len("span"), *(len(k) for k in spans))
        lines.append(
            f"  {'span':<{name_w}}  {'calls':>7}  {'total s':>9}  {'mean ms':>9}"
        )
        for name in sorted(spans, key=lambda k: -spans[k]["seconds"]):
            stat = spans[name]
            calls, seconds = stat["calls"], stat["seconds"]
            mean_ms = 1e3 * seconds / calls if calls else 0.0
            lines.append(
                f"  {name:<{name_w}}  {calls:>7d}  {seconds:>9.4f}  {mean_ms:>9.3f}"
            )
    counters = data.get("counters", {})
    if counters:
        name_w = max(len("counter"), *(len(k) for k in counters))
        lines.append(f"  {'counter':<{name_w}}  {'value':>12}")
        for name in sorted(counters):
            lines.append(f"  {name:<{name_w}}  {counters[name]:>12d}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
