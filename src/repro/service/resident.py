"""Resident shard arrays: the O(churn) request path of the server.

Before this module the server turned every delta frame back into a full
:class:`~repro.core.instance.Instance` (``apply_delta``'s three O(n)
copies) and re-hashed all three arrays (another O(n)) before a solve
could even be enqueued.  The engine underneath had already gone
O(churn); the service layer in front of it had not.

A :class:`ResidentShard` is the fix: the server keeps, per shard, one
*writable* copy of the snapshot arrays plus the rolling-fingerprint
state of :mod:`repro.core.rollhash`.  A delta frame whose ``base``
names the resident tip is then pure O(changed sites) work on the event
loop — gather the old values, scatter the new ones, roll the
fingerprint — and what travels to the solve side is a small
:class:`Frame`, not an instance.

Two residents exist per shard because the server has two planes:

* the **admission plane** (:class:`ResidentShard`) lives on the event
  loop and owns the tip fingerprint clients rebase on;
* the **solve plane** (:class:`SolveResident`) lives on the solve
  thread and replays committed frames — in commit order, possibly
  several per solve when earlier requests were answered from the
  response memo — onto its own arrays just before handing the engine a
  zero-copy :meth:`~repro.core.instance.Instance.trusted` view plus the
  accumulated churn hint.

The split means neither plane ever reads arrays the other is writing.
Frames ride the admitted request they were committed for (the
admission queue is FIFO and a batch lane solves in arrival order, so
the solve plane sees frames in exactly commit order); frames whose
request never got admitted — response-memo hits — wait in the shard's
``pending`` list and ride along with the next admitted request.  When
``pending`` would grow past :data:`FRAME_LOG_CAP` the admission plane
collapses it and schedules a full reinstall instead — an O(n) resync
is cheaper than an unbounded log, and the engine would fall back to a
full table rebuild at that churn level anyway.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.rollhash import RollingFingerprint, fingerprint_state

__all__ = ["FRAME_LOG_CAP", "Frame", "ResidentShard", "SolveResident"]

# Pending (committed but never shipped) frames per shard before the
# admission plane gives up on incremental sync and schedules a full
# reinstall of the solve plane.  Only reachable when requests are
# persistently memo-answered while churn keeps arriving.
FRAME_LOG_CAP = 256


class Frame:
    """One committed delta: the changed sites and both value sets.

    ``old_*`` are the values the sites held *before* this frame — the
    exact shape of the engine's churn hint and of one
    :meth:`~repro.core.rollhash.RollingFingerprint.roll` call.
    """

    __slots__ = (
        "idx", "sizes", "costs", "initial",
        "old_sizes", "old_costs", "old_initial",
    )

    def __init__(
        self,
        idx: np.ndarray,
        sizes: np.ndarray,
        costs: np.ndarray,
        initial: np.ndarray,
        old_sizes: np.ndarray,
        old_costs: np.ndarray,
        old_initial: np.ndarray,
    ) -> None:
        self.idx = idx
        self.sizes = sizes
        self.costs = costs
        self.initial = initial
        self.old_sizes = old_sizes
        self.old_costs = old_costs
        self.old_initial = old_initial


def _frame_arrays(
    delta: dict, num_jobs: int, num_processors: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Validate one wire delta body into frame arrays.

    Raises :class:`ValueError` on malformed input (mismatched lengths,
    out-of-range indices, unsorted or repeated sites) — the same
    contract :func:`~repro.core.instance.apply_delta` enforces, plus
    strict ordering, which both the gather/scatter and the fingerprint
    roll rely on.
    """
    idx = np.asarray(delta["idx"], dtype=np.int64)
    sizes = np.asarray(delta["sizes"], dtype=np.float64)
    costs = np.asarray(delta["costs"], dtype=np.float64)
    initial = np.asarray(delta["initial"], dtype=np.int64)
    if not (idx.shape == sizes.shape == costs.shape == initial.shape):
        raise ValueError("delta arrays must have matching lengths")
    if idx.ndim != 1:
        raise ValueError("delta arrays must be one-dimensional")
    if idx.shape[0]:
        if idx[0] < 0 or idx[-1] >= num_jobs:
            raise ValueError("delta index out of range")
        if idx.shape[0] > 1 and not np.all(idx[:-1] < idx[1:]):
            raise ValueError("delta indices must be strictly increasing")
        if initial.min() < 0 or initial.max() >= num_processors:
            raise ValueError("delta initial assignment out of range")
    return idx, sizes, costs, initial


class ResidentShard:
    """Event-loop resident: tip fingerprint, arrays, and frame log."""

    __slots__ = (
        "sizes", "costs", "initial", "num_processors",
        "fp", "fp_hex", "pending", "needs_install",
    )

    def __init__(self, instance: Instance) -> None:
        # Writable copies: the wire decode hands out read-only
        # frombuffer views, and this plane scatters into its arrays.
        self.sizes = np.array(instance.sizes, dtype=np.float64)
        self.costs = np.array(instance.costs, dtype=np.float64)
        self.initial = np.array(instance.initial, dtype=np.int64)
        self.num_processors = int(instance.num_processors)
        self.fp = fingerprint_state(
            self.sizes, self.costs, self.initial, self.num_processors
        )
        self.fp_hex = self.fp.digest().hex()
        self.pending: list[Frame] = []
        # True until the solve plane has been sent a full snapshot; a
        # fresh resident starts stale because the solve thread has
        # never seen these arrays.
        self.needs_install = True

    @property
    def num_jobs(self) -> int:
        return int(self.sizes.shape[0])

    def preview(self, delta: dict) -> tuple[Frame, RollingFingerprint]:
        """Frame + post-frame fingerprint for a delta, without committing.

        O(changed sites).  The caller commits only once the request is
        actually admitted (or memo-answered), so a rejected request
        leaves the tip untouched and the client's retry still lands.
        """
        idx, sizes, costs, initial = _frame_arrays(
            delta, self.num_jobs, self.num_processors
        )
        frame = Frame(
            idx, sizes, costs, initial,
            self.sizes[idx].copy(),
            self.costs[idx].copy(),
            self.initial[idx].copy(),
        )
        fp = self.fp.copy()
        fp.roll(
            idx, frame.old_sizes, frame.old_costs, frame.old_initial,
            sizes, costs, initial,
        )
        return frame, fp

    def commit(self, frame: Frame, fp: RollingFingerprint) -> None:
        """Advance the tip: scatter the frame and adopt its fingerprint."""
        self.sizes[frame.idx] = frame.sizes
        self.costs[frame.idx] = frame.costs
        self.initial[frame.idx] = frame.initial
        self.fp = fp
        self.fp_hex = fp.digest().hex()

    def defer(self, frame: Frame) -> None:
        """Park a committed frame whose request was answered from the
        response memo; it rides along with the next admitted request."""
        self.pending.append(frame)
        if len(self.pending) > FRAME_LOG_CAP:
            self.collapse()

    def claim_frames(self, frame: Frame) -> list[Frame]:
        """Frames an admitted request must carry: everything parked
        plus its own, oldest first."""
        if not self.pending:
            return [frame]
        claimed = self.pending + [frame]
        self.pending = []
        return claimed

    def collapse(self) -> None:
        """Drop parked frames and schedule a full solve-plane resync."""
        self.pending.clear()
        self.needs_install = True

    def export_instance(self) -> Instance:
        """Validating snapshot of the tip (failover/migration export)."""
        return Instance(
            sizes=self.sizes.copy(),
            costs=self.costs.copy(),
            num_processors=self.num_processors,
            initial=self.initial.copy(),
        )

    def install_instance(self) -> Instance:
        """Trusted copy of the tip for a solve-plane reinstall."""
        return Instance.trusted(
            self.sizes.copy(), self.costs.copy(),
            self.num_processors, self.initial.copy(),
        )


class SolveResident:
    """Solve-thread resident: replays frames, serves trusted views."""

    __slots__ = ("sizes", "costs", "initial", "num_processors")

    def __init__(self, instance: Instance) -> None:
        self.sizes = np.array(instance.sizes, dtype=np.float64)
        self.costs = np.array(instance.costs, dtype=np.float64)
        self.initial = np.array(instance.initial, dtype=np.int64)
        self.num_processors = int(instance.num_processors)

    def apply(self, frames: list[Frame]) -> tuple | None:
        """Scatter ``frames`` in order; return the merged churn hint.

        Old values are gathered from *these* arrays immediately before
        each scatter — by construction equal to the frame's own
        ``old_*`` (both planes replay the identical sequence), but
        self-gathering keeps the hint consistent with the tables this
        plane's engine actually holds.  ``None`` when there is nothing
        to apply.
        """
        if not frames:
            return None
        idx_parts: list[np.ndarray] = []
        olds_parts: list[np.ndarray] = []
        oldc_parts: list[np.ndarray] = []
        oldi_parts: list[np.ndarray] = []
        for frame in frames:
            idx = frame.idx
            idx_parts.append(idx)
            olds_parts.append(self.sizes[idx].copy())
            oldc_parts.append(self.costs[idx].copy())
            oldi_parts.append(self.initial[idx].copy())
            self.sizes[idx] = frame.sizes
            self.costs[idx] = frame.costs
            self.initial[idx] = frame.initial
        if len(idx_parts) == 1:
            return (idx_parts[0], olds_parts[0], oldc_parts[0], oldi_parts[0])
        # Oldest first: the engine's hint normalization keeps the first
        # occurrence per site, i.e. the value its tables still describe.
        return (
            np.concatenate(idx_parts),
            np.concatenate(olds_parts),
            np.concatenate(oldc_parts),
            np.concatenate(oldi_parts),
        )

    def view(self) -> Instance:
        """Zero-copy trusted view of the current arrays.

        The engine's hint contract explicitly supports instances that
        alias its own tables' snapshot, so no copies are taken; the
        arrays must not be mutated until the solve completes (the solve
        thread runs one batch at a time, which guarantees it).
        """
        return Instance.trusted(
            self.sizes, self.costs, self.num_processors, self.initial
        )
