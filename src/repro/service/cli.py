"""Command-line entry points for the service layer.

``python -m repro serve`` (or the ``repro-serve`` console script)
starts the asyncio server; ``python -m repro loadgen`` drives a server
— an existing one via ``--connect host:port``, a fresh in-process one
via ``--spawn``, or a freshly spawned cluster (router + N backend
processes) via ``--router N`` — with the open-loop generator and
prints the latency/goodput report.  ``loadgen`` doubles as the CI
smoke check: ``--assert-clean`` exits non-zero on any protocol error
and ``--p99-bound`` bounds the observed tail latency.

``python -m repro router`` starts the cluster tier's coordinator: it
speaks the same protocol as ``serve`` toward clients and places shards
on the backends named by ``--backends`` (or spawned by ``--spawn N``)
via consistent hashing, with delta-replay replication and failover
(see :mod:`repro.service.cluster`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
from pathlib import Path

from .client import ServiceClient
from .cluster import (
    BackendSpec,
    ClusterRouter,
    RouterConfig,
    ServeProcess,
    spawn_serve_process,
    start_router_background,
)
from .dataplane import (
    ShardedRouter,
    default_router_workers,
    start_sharded_router,
)
from .loadgen import (
    ChurnStreamConfig,
    LoadGenConfig,
    run_churn_stream,
    run_loadgen,
)
from .server import RebalanceServer, ServerConfig, start_background

__all__ = ["loadgen_main", "router_main", "serve_main"]


def _server_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = let the OS pick a free one)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size ceiling",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch accumulation window",
    )
    parser.add_argument(
        "--max-queue", type=int, default=128,
        help="admission queue depth (requests beyond it are rejected)",
    )
    parser.add_argument(
        "--solver-workers", type=int, default=4,
        help="worker threads fanning out independent shard lanes "
             "(capped at the core count unless --solve-delay-ms sets "
             "a synthetic service-time floor)",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="where shard engines live: this process (thread fan-out) "
        "or a pool of long-lived worker processes with shard affinity",
    )
    parser.add_argument(
        "--process-workers", type=int, default=2,
        help="worker processes for --executor process",
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared-memory snapshot plane (--executor "
        "process defaults to shm: workers read snapshots zero-copy "
        "from a shm ring instead of receiving arrays over the pipe)",
    )
    parser.add_argument(
        "--shm-slots", type=int, default=128,
        help="snapshot ring slots (distinct live snapshots)",
    )
    parser.add_argument(
        "--shm-slot-bytes", type=int, default=1 << 20,
        help="bytes per ring slot (bounds the largest shm snapshot; "
        "bigger snapshots fall back to the inline codec path)",
    )
    parser.add_argument(
        "--naive", action="store_true",
        help="one-request-per-solve control mode: batch size 1, no "
        "dedupe, no warm engine (the E14 baseline)",
    )
    parser.add_argument(
        "--solve-delay-ms", type=float, default=0.0,
        help="synthetic per-solve service-time floor (thread executor "
        "only): sleeps on the solve thread, releasing the GIL, so a "
        "node's capacity is pinned regardless of host CPU — used by "
        "capacity-pinned benchmarks like E17",
    )


def _config_from(args: argparse.Namespace) -> ServerConfig:
    common = dict(
        host=args.host, port=args.port, max_queue=args.max_queue,
        solver_workers=args.solver_workers,
        executor=args.executor, process_workers=args.process_workers,
        shm=not args.no_shm, shm_slots=args.shm_slots,
        shm_slot_bytes=args.shm_slot_bytes,
        solve_delay_s=args.solve_delay_ms / 1e3,
    )
    if args.naive:
        return ServerConfig.naive(**common)
    return ServerConfig(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms, **common
    )


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve rebalancing decisions over length-prefixed "
        "JSON TCP (ops: rebalance, status, reset, ping).",
    )
    _server_arguments(parser)
    parser.add_argument(
        "--port-file", type=Path, default=None,
        help="write the bound port here once listening (lets scripts "
        "use --port 0 and discover the actual port)",
    )
    args = parser.parse_args(argv)

    async def main() -> None:
        server = RebalanceServer(_config_from(args))
        await server.start()
        print(
            f"repro-serve listening on {server.config.host}:{server.port}",
            flush=True,
        )
        if args.port_file is not None:
            args.port_file.write_text(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _spawn_backends(
    count: int, args: argparse.Namespace
) -> tuple[list[ServeProcess], tuple[BackendSpec, ...]]:
    """Spawn ``count`` real ``serve`` OS processes (cluster scale needs
    processes, not threads) and name them for the ring."""
    extra: list[str] = ["--executor", args.executor]
    if args.executor == "process":
        extra += ["--process-workers", str(args.process_workers)]
        if args.no_shm:
            extra.append("--no-shm")
    if args.naive:
        extra.append("--naive")
    processes: list[ServeProcess] = []
    try:
        for _ in range(count):
            processes.append(spawn_serve_process(*extra))
    except BaseException:
        for proc in processes:
            proc.terminate()
        raise
    specs = tuple(
        BackendSpec(name=f"backend-{i}", host=proc.host, port=proc.port)
        for i, proc in enumerate(processes)
    )
    return processes, specs


def router_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-router",
        description="Cluster-tier coordinator: route shards onto N "
        "backend serve nodes (consistent hashing), replicate each "
        "shard's delta stream to a standby, and fail over on backend "
        "death.  Speaks the same protocol as 'serve' toward clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = let the OS pick a free one)",
    )
    parser.add_argument(
        "--port-file", type=Path, default=None,
        help="write the bound port here once listening",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--backends", metavar="[NAME=]HOST:PORT,...",
        help="comma-separated running backends to place shards on",
    )
    target.add_argument(
        "--spawn", type=int, metavar="N",
        help="spawn N backend serve processes for the router's lifetime",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="executor for --spawn backends",
    )
    parser.add_argument("--process-workers", type=int, default=2)
    parser.add_argument("--no-shm", action="store_true")
    parser.add_argument("--naive", action="store_true")
    parser.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per backend on the hash ring",
    )
    parser.add_argument(
        "--health-interval", type=float, default=0.25, metavar="S",
        help="seconds between health probes per backend",
    )
    parser.add_argument(
        "--health-misses", type=int, default=2,
        help="consecutive probe misses before a backend is declared dead",
    )
    parser.add_argument(
        "--no-replicate", action="store_true",
        help="disable delta-replay replication to shard standbys",
    )
    parser.add_argument(
        "--repl-coalesce-ms", type=float, default=0.0, metavar="MS",
        help="delay each replication drain step to batch frames and "
        "keep standby replay off the decide response tail",
    )
    parser.add_argument(
        "--router-workers", type=int, default=1, metavar="N",
        help="router data-plane worker processes sharing the listening "
        "port, each owning a shard-affine slice of resident tips "
        "(1 = classic single-process router; 0 = auto, min(4, cores))",
    )
    parser.add_argument(
        "--relay-concurrency", type=int, default=0,
        help="per-worker relayed-full concurrency cap (0 = unbounded); "
        "with --relay-delay-ms this pins a worker's relay capacity "
        "regardless of host CPU, the E19 measurement device",
    )
    parser.add_argument(
        "--relay-delay-ms", type=float, default=0.0, metavar="MS",
        help="synthetic per-relay service-time floor held under the "
        "concurrency permit",
    )
    args = parser.parse_args(argv)

    if args.router_workers < 0:
        parser.error("--router-workers must be >= 0")

    processes: list[ServeProcess] = []
    if args.spawn is not None:
        if args.spawn <= 0:
            parser.error("--spawn must be positive")
        processes, specs = _spawn_backends(args.spawn, args)
    else:
        try:
            specs = tuple(
                BackendSpec.parse(text.strip(), i)
                for i, text in enumerate(args.backends.split(","))
            )
        except ValueError as exc:
            parser.error(str(exc))
    config = RouterConfig(
        backends=specs, host=args.host, port=args.port,
        vnodes=args.vnodes, replicate=not args.no_replicate,
        repl_coalesce_s=args.repl_coalesce_ms / 1e3,
        health_interval_s=args.health_interval,
        health_misses=args.health_misses,
        relay_concurrency=args.relay_concurrency,
        relay_delay_s=args.relay_delay_ms / 1e3,
    )
    workers = args.router_workers or default_router_workers()
    backends = ", ".join(f"{b.name}@{b.host}:{b.port}" for b in specs)

    if workers > 1:
        # Sharded data plane: worker processes accept on the shared
        # port; this process is the control plane (health, death
        # declaration, worker respawn).  The control loop is a plain
        # thread, so signal handling is a threading.Event, not asyncio.
        try:
            sharded = start_sharded_router(config, workers)
        except BaseException:
            for proc in processes:
                proc.terminate()
            raise
        stop_event = threading.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, lambda *_: stop_event.set())
        try:
            print(
                f"repro-router listening on {config.host}:{sharded.port} "
                f"({workers} workers) -> [{backends}]",
                flush=True,
            )
            if args.port_file is not None:
                args.port_file.write_text(f"{sharded.port}\n")
            stop_event.wait()
        finally:
            sharded.stop()
            for proc in processes:
                proc.terminate()
        return 0

    async def main() -> None:
        router = ClusterRouter(config)
        await router.start()
        print(
            f"repro-router listening on {config.host}:{router.port} "
            f"-> [{backends}]",
            flush=True,
        )
        if args.port_file is not None:
            args.port_file.write_text(f"{router.port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, router.request_stop)
        await router.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        for proc in processes:
            proc.terminate()
    return 0


def _schedule_router_worker_kill(
    host: str, port: int, delay_s: float
) -> threading.Timer:
    """Fault injection for the cluster smoke: ``delay_s`` seconds in,
    look up the sharded router's data-plane workers via ``status`` and
    SIGKILL the lowest-indexed one.  The control plane must respawn it
    and the in-flight churn streams must ride out the gap on their
    retry budget for ``--assert-clean`` to pass.
    """

    def kill() -> None:
        try:
            client = ServiceClient(host, port, timeout=5.0, retries=2)
            try:
                status = client.call({"op": "status"})
            finally:
                client.close()
            workers = status.get("router", {}).get("workers") or {}
            if not workers:
                print("no router workers reported; kill skipped", flush=True)
                return
            index = min(workers, key=int)
            pid = int(workers[index]["pid"])
            os.kill(pid, signal.SIGKILL)
            print(f"killed router worker {index} (pid {pid})", flush=True)
        except Exception as exc:  # pragma: no cover - smoke diagnostics
            print(f"router-worker kill failed: {exc}", flush=True)

    timer = threading.Timer(delay_s, kill)
    timer.daemon = True
    timer.start()
    return timer


def loadgen_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Open-loop load generator: drive a rebalancing "
        "server and report goodput and latency percentiles.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--connect", metavar="HOST:PORT",
        help="use a running server at HOST:PORT",
    )
    target.add_argument(
        "--spawn", action="store_true",
        help="start an in-process server for the duration of the run",
    )
    target.add_argument(
        "--router", type=int, metavar="N",
        help="spawn N backend serve processes plus a cluster router "
        "and drive the run through the router",
    )
    _server_arguments(parser)
    parser.add_argument(
        "--router-workers", type=int, default=1, metavar="N",
        help="data-plane worker processes for the spawned router "
        "(with --router; 1 = classic single-process router, 0 = auto)",
    )
    parser.add_argument(
        "--kill-router-worker-after", type=float, default=None,
        metavar="S",
        help="kill -9 one router data-plane worker S seconds into the "
        "run (requires --router with --router-workers > 1); the run "
        "must survive the respawn to pass --assert-clean",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="per-request retry budget (churn-stream traffic only; "
        "default 2 — raise it so a stream spans a worker respawn)",
    )
    parser.add_argument(
        "--no-encoder", action="store_true",
        help="rebuild each churn-stream epoch's message dict instead "
        "of using the reusable frame encoder (the client-CPU A/B "
        "baseline)",
    )
    parser.add_argument("--rate", type=float, default=50.0,
                        help="arrivals per second (open loop)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="arrival window in seconds")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--duplicates", type=int, default=4,
                        help="identical submissions per snapshot "
                        "(simulated frontends)")
    parser.add_argument("--sites", type=int, default=600)
    parser.add_argument("--servers", type=int, default=12)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline (<=0 disables; "
                        "default 500 for open-loop traffic, none for "
                        "churn-stream)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--protocol", choices=("json", "binary"),
                        default="json",
                        help="wire format: v1 length-prefixed JSON or "
                        "v2 binary frames with raw array buffers")
    parser.add_argument("--delta", action="store_true",
                        help="send changed-site delta snapshots "
                        "(requires --protocol binary)")
    parser.add_argument("--shards", type=int, default=1,
                        help="distinct server shards to round-robin "
                        "(each gets its own snapshot stream lane)")
    parser.add_argument("--traffic",
                        choices=("drift", "steady", "churn",
                                 "churn-stream"),
                        default="drift",
                        help="drift: diurnal+flash (every site moves "
                        "each epoch); steady: flash crowds only "
                        "(sparse churn, the delta-friendly regime); "
                        "churn: one flash crowd every epoch (sparse "
                        "but every snapshot distinct); churn-stream: "
                        "closed-loop per-shard delta stream (one "
                        "request in flight per shard, O(churn) frames "
                        "built in place, moves applied locally — the "
                        "steady-state regime E18 measures)")
    parser.add_argument("--churn", type=int, default=16,
                        help="sites mutated per shard per epoch "
                        "(churn-stream traffic only)")
    parser.add_argument("--epochs", type=int, default=64,
                        help="decides per shard (churn-stream traffic "
                        "only)")
    parser.add_argument("--warmup-epochs", type=int, default=3,
                        help="leading epochs excluded from the steady "
                        "latency histogram (churn-stream traffic only)")
    parser.add_argument("--epoch-interval-ms", type=float, default=None,
                        metavar="MS",
                        help="pace churn-stream epochs on an absolute "
                        "per-shard-staggered schedule instead of "
                        "closed-loop saturation (churn-stream traffic "
                        "only)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--assert-clean", action="store_true",
                        help="exit 1 if any protocol/transport error "
                        "occurred")
    parser.add_argument("--p99-bound", type=float, default=None,
                        metavar="MS",
                        help="exit 1 if p99 latency exceeds this bound")
    args = parser.parse_args(argv)

    if args.delta and args.protocol != "binary":
        parser.error("--delta requires --protocol binary")
    deadline_ms = args.deadline_ms
    if deadline_ms is not None and deadline_ms <= 0:
        deadline_ms = None
    if args.kill_router_worker_after is not None and (
        args.router is None or args.router_workers == 1
    ):
        parser.error(
            "--kill-router-worker-after requires --router with "
            "--router-workers > 1"
        )
    if args.traffic == "churn-stream":
        extra = {}
        if args.retries is not None:
            extra["retries"] = args.retries
        config = ChurnStreamConfig(
            shards=args.shards, k=args.k,
            num_sites=args.sites, num_servers=args.servers,
            churn=args.churn, epochs=args.epochs,
            warmup_epochs=args.warmup_epochs,
            seed=args.seed, deadline_ms=deadline_ms,
            epoch_interval_ms=args.epoch_interval_ms,
            use_encoder=not args.no_encoder,
            **extra,
        )
    else:
        if args.deadline_ms is None:
            deadline_ms = 500.0
        config = LoadGenConfig(
            rate=args.rate, duration_s=args.duration,
            connections=args.connections, duplicates=args.duplicates,
            num_sites=args.sites, num_servers=args.servers,
            k=args.k, deadline_ms=deadline_ms, seed=args.seed,
            protocol=args.protocol, delta=args.delta,
            shards=args.shards, traffic=args.traffic,
        )

    handle = None
    router_handle = None
    sharded: ShardedRouter | None = None
    kill_timer: threading.Timer | None = None
    processes: list[ServeProcess] = []
    if args.spawn:
        handle = start_background(_config_from(args))
        host, port = handle.host, handle.port
    elif args.router is not None:
        if args.router <= 0:
            parser.error("--router must be positive")
        processes, specs = _spawn_backends(args.router, args)
        router_workers = args.router_workers or default_router_workers()
        try:
            router_config = RouterConfig(backends=specs)
            if router_workers > 1:
                sharded = start_sharded_router(router_config, router_workers)
                host, port = sharded.host, sharded.port
            else:
                router_handle = start_router_background(router_config)
                host, port = router_handle.host, router_handle.port
        except BaseException:
            for proc in processes:
                proc.terminate()
            raise
    else:
        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            parser.error("--connect must look like HOST:PORT")
        port = int(port_text)
    if args.kill_router_worker_after is not None:
        kill_timer = _schedule_router_worker_kill(
            host, port, args.kill_router_worker_after
        )
    try:
        if args.traffic == "churn-stream":
            report = run_churn_stream(host, port, config)
        else:
            report = run_loadgen(host, port, config)
    finally:
        if kill_timer is not None:
            kill_timer.cancel()
        if handle is not None:
            handle.stop()
        if router_handle is not None:
            router_handle.stop()
        if sharded is not None:
            sharded.stop()
        for proc in processes:
            proc.terminate()

    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())

    failed = False
    mismatches = getattr(report, "fp_mismatches", 0)
    if args.assert_clean and (report.errors or mismatches):
        print(
            f"FAIL: {report.errors} protocol/transport errors, "
            f"{mismatches} fingerprint mismatches",
            flush=True,
        )
        failed = True
    p99_ms = (
        report.steady_p99_ms if args.traffic == "churn-stream"
        else report.p99_ms
    )
    if args.p99_bound is not None and p99_ms > args.p99_bound:
        print(
            f"FAIL: p99 {p99_ms:.1f}ms exceeds bound "
            f"{args.p99_bound:.1f}ms",
            flush=True,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
