"""Sync and async clients for the rebalancing service.

Both speak the two wire formats of :mod:`repro.service.protocol` —
``protocol="json"`` (v1 length-prefixed JSON, the default) or
``protocol="binary"`` (v2 frames whose numeric arrays travel as raw
little-endian buffers) — reconnect on transport failure with jittered
exponential backoff (capped at ``timeout``; a dead server is probed,
not hammered), honor the server's ``overloaded`` backpressure (sleep
``retry_after_ms``, then retry, up to ``retries`` times; the
:class:`Overloaded` raised when the final attempt is still overloaded
carries that final response's ``retry_after_ms`` hint so callers can
keep honoring it), and rebuild a full
:class:`~repro.core.result.RebalanceResult` from the response — the
returned object is interchangeable with an in-process solver call,
which is what lets :class:`~repro.websim.policies.ServicePolicy` drive
the simulator through the wire unchanged.

``delta=True`` (binary protocol only) turns on **delta snapshots**: the
client remembers, per shard, the last snapshot the server acknowledged
(by the ``fingerprint`` in its response) and ships only the changed
sites of the next one (:func:`repro.core.instance.compute_delta`).  A
server that no longer holds the base answers ``unknown base`` and the
client transparently resends the full snapshot — delta mode is a pure
bytes-on-wire optimization, never a different answer.  The
``deltas_sent`` / ``fulls_sent`` counters expose how often each path
ran.

:class:`ServiceClient` is the blocking client (tests, simulator
policies, scripts); :class:`AsyncServiceClient` is the asyncio client
the load generator fans out with.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from typing import Any

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance, compute_delta
from ..core.result import RebalanceResult
from .protocol import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    encode_frame,
    read_frame,
    read_frame_sync,
    write_frame_sync,
)

__all__ = [
    "AsyncServiceClient",
    "Overloaded",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(Exception):
    """The server answered ``ok: false`` (or the transport failed)."""

    def __init__(self, error: str, response: dict[str, Any] | None = None):
        super().__init__(error)
        self.error = error
        self.response = response or {}


class Overloaded(ServiceError):
    """Admission control rejected the request; retry after the hint."""

    @property
    def retry_after_ms(self) -> float:
        return float(self.response.get("retry_after_ms", 5.0))


def _result_from_response(
    instance: Instance, response: dict[str, Any], latency_s: float
) -> RebalanceResult:
    if "mapping" in response:
        mapping = np.asarray(response["mapping"], dtype=np.int64)
    else:
        # Compact (moves_only) response: the mapping is the request's
        # own initial assignment plus the moved sites.
        mapping = np.array(instance.initial, dtype=np.int64)
        moves_idx = np.asarray(response["moves_idx"], dtype=np.int64)
        if moves_idx.shape[0]:
            mapping[moves_idx] = np.asarray(
                response["moves_to"], dtype=np.int64
            )
    assignment = Assignment(instance=instance, mapping=mapping)
    meta: dict[str, Any] = {"service": {"latency_s": latency_s}}
    if "batch" in response:
        meta["service"]["batch"] = response["batch"]
    return RebalanceResult(
        assignment=assignment,
        algorithm=response.get("algorithm", "service"),
        guessed_opt=response.get("guessed_opt"),
        planned_moves=response.get("planned_moves"),
        meta=meta,
    )


def _raise_for(response: dict[str, Any]) -> None:
    error = response.get("error", "unknown error")
    if error == "overloaded":
        raise Overloaded(error, response)
    raise ServiceError(error, response)


# Transport-retry backoff: first retry waits ~50ms, doubling per
# attempt, jittered into [0.5, 1.0] of the nominal delay so a fleet of
# clients losing one server does not reconnect in lockstep.  The cap is
# the client's own timeout — waiting longer than we would wait for a
# response makes no sense.
_BACKOFF_BASE_S = 0.05


def _transport_backoff_s(attempt: int, timeout: float) -> float:
    """Jittered exponential backoff before transport-failure retry
    number ``attempt`` (0-based), capped at ``timeout`` seconds."""
    nominal = min(max(0.0, timeout), _BACKOFF_BASE_S * (2.0 ** attempt))
    return nominal * random.uniform(0.5, 1.0)


class _WireState:
    """Shared protocol/delta bookkeeping of both client flavors.

    One instance may be shared by several :class:`AsyncServiceClient`
    connections (see ``wire_state=``): the delta base is a property of
    the *frontend* that observed the snapshot, not of any single TCP
    connection, and the server resolves bases per shard regardless of
    which connection named them.  With concurrent in-flight requests
    the base can update out of order; a delta against a slightly stale
    base is still correct (the server retains a window of recent
    bases, and "unknown base" falls back to a full snapshot).
    """

    def __init__(self, protocol: str, delta: bool) -> None:
        if protocol not in ("json", "binary"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if delta and protocol != "binary":
            raise ValueError("delta snapshots require the binary protocol")
        self.protocol = protocol
        self.delta = delta
        self.version = PROTOCOL_V2 if protocol == "binary" else PROTOCOL_V1
        # Per shard: (fingerprint hex, instance) of the last snapshot
        # the server acknowledged — the delta base.
        self.bases: dict[str, tuple[str, Instance]] = {}
        self.deltas_sent = 0
        self.fulls_sent = 0

    def rebalance_message(
        self,
        instance: Instance,
        k: int,
        shard: str,
        deadline_ms: float | None,
        *,
        full: bool = False,
        op: str = "rebalance",
        moves_only: bool = False,
    ) -> tuple[dict[str, Any], bool]:
        """The request body and whether it carries a delta.

        A delta is only worth sending when it is actually smaller on the
        wire: a full snapshot ships ``3n`` array values, a delta ``4c``
        (the index array rides along), so ``4c < 3n`` is the cutover.
        ``op`` lets the cluster router reuse the same delta machinery
        for node-to-node ``replicate`` frames.  ``moves_only`` asks the
        server for the compact response (moved sites instead of the
        full mapping) — symmetric with deltas, it takes the *response*
        from O(n) to O(moves); servers that do not support it ignore
        the flag and answer with a mapping.
        """
        message: dict[str, Any] = {"op": op, "shard": shard, "k": k}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if moves_only:
            message["moves_only"] = True
        sent_delta = False
        if self.delta and not full:
            base = self.bases.get(shard)
            if base is not None:
                fp_hex, base_instance = base
                delta = compute_delta(base_instance, instance)
                if delta is not None and 4 * len(delta["idx"]) < 3 * instance.num_jobs:
                    message["delta"] = {"base": fp_hex, **delta}
                    sent_delta = True
        if not sent_delta:
            message["instance"] = (
                instance.to_wire() if self.protocol == "binary"
                else instance.to_dict()
            )
        if sent_delta:
            self.deltas_sent += 1
        else:
            self.fulls_sent += 1
        return message, sent_delta

    def note_response(
        self, shard: str, instance: Instance, response: dict[str, Any]
    ) -> None:
        if not self.delta:
            return
        fp_hex = response.get("fingerprint")
        if isinstance(fp_hex, str):
            self.bases[shard] = (fp_hex, instance)

    def forget(self, shard: str | None) -> None:
        if shard is None:
            self.bases.clear()
        else:
            self.bases.pop(shard, None)


class ServiceClient:
    """Blocking client over one lazily (re)connected TCP socket.

    One request is in flight per client at a time (the protocol is
    request/response per connection); use several clients — or the
    async client — for concurrency.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        protocol: str = "json",
        delta: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._wire = _WireState(protocol, delta)
        self._sock: socket.socket | None = None
        # Observability for retry behavior (tests pin the no-spin fix).
        self.transport_retries = 0
        self.backoff_slept_s = 0.0

    @property
    def deltas_sent(self) -> int:
        """Rebalance requests that went out as delta frames."""
        return self._wire.deltas_sent

    @property
    def fulls_sent(self) -> int:
        """Rebalance requests that went out as full snapshots."""
        return self._wire.fulls_sent

    # -- connection management ----------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- raw request/response -----------------------------------------
    def call(self, message: dict[str, Any]) -> dict[str, Any]:
        """One round-trip, with reconnect-and-retry on transport
        failure (jittered exponential backoff, capped at ``timeout``)
        and overload backoff.  Returns the raw response."""
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                sock = self._connection()
                write_frame_sync(sock, message, version=self._wire.version)
                response = read_frame_sync(sock)
                if response is None:
                    raise ServiceError("server closed the connection")
            except (OSError, ProtocolError, ServiceError) as exc:
                # Dead or poisoned connection: drop it and retry fresh —
                # after a backoff, so a dead server sees a probe per
                # backoff window instead of a tight reconnect spin.
                self.close()
                last_error = exc
                if attempt < self.retries:
                    self.transport_retries += 1
                    delay = _transport_backoff_s(attempt, self.timeout)
                    self.backoff_slept_s += delay
                    time.sleep(delay)
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                # The raised Overloaded (below, after the last attempt)
                # carries this response, so its retry_after_ms hint
                # survives to the caller even when every attempt was
                # rejected.
                last_error = Overloaded("overloaded", response)
                if attempt < self.retries:
                    time.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    # -- operations ----------------------------------------------------
    def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
        moves_only: bool = False,
    ) -> RebalanceResult:
        """Solve one snapshot remotely; raises :class:`ServiceError` on
        a non-ok response that outlives the retry budget."""
        message, sent_delta = self._wire.rebalance_message(
            instance, k, shard, deadline_ms, moves_only=moves_only
        )
        start = time.perf_counter()
        response = self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            # The server evicted (or restarted past) our base: fall
            # back to a full snapshot, once, and rebase from there.
            self._wire.forget(shard)
            message, _ = self._wire.rebalance_message(
                instance, k, shard, deadline_ms, full=True,
                moves_only=moves_only,
            )
            response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        self._wire.note_response(shard, instance, response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    def status(self) -> dict[str, Any]:
        response = self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    def reset(self, shard: str | None = None) -> list[str]:
        message: dict[str, Any] = {"op": "reset"}
        if shard is not None:
            message["shard"] = shard
        response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - reset cannot fail
        self._wire.forget(shard)
        return list(response.get("reset", []))

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("ok"))


class AsyncServiceClient:
    """Asyncio client over one stream pair; same retry semantics."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        protocol: str = "json",
        delta: bool = False,
        wire_state: _WireState | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        # A caller-supplied wire state shares the delta-base registry
        # (and delta/full counters) across a pool of connections.
        self._wire = wire_state if wire_state is not None else _WireState(protocol, delta)
        self._streams: tuple[asyncio.StreamReader, asyncio.StreamWriter] | None = None
        # Observability for retry behavior (tests pin the no-spin fix).
        self.transport_retries = 0
        self.backoff_slept_s = 0.0

    @property
    def deltas_sent(self) -> int:
        """Rebalance requests that went out as delta frames."""
        return self._wire.deltas_sent

    @property
    def fulls_sent(self) -> int:
        """Rebalance requests that went out as full snapshots."""
        return self._wire.fulls_sent

    async def _connection(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._streams is None:
            self._streams = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        return self._streams

    async def close(self) -> None:
        if self._streams is not None:
            _, writer = self._streams
            self._streams = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def call(self, message: dict[str, Any]) -> dict[str, Any]:
        """One round-trip with reconnect/overload retry (async).

        Same semantics as :meth:`ServiceClient.call`: transport
        failures back off exponentially with jitter (capped at
        ``timeout``) before the reconnect, overloaded responses sleep
        the server's ``retry_after_ms`` hint, and the final attempt's
        failure is what the caller sees.
        """
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                reader, writer = await self._connection()
                writer.write(encode_frame(message, version=self._wire.version))
                await writer.drain()
                response = await asyncio.wait_for(
                    read_frame(reader), self.timeout
                )
                if response is None:
                    raise ServiceError("server closed the connection")
            except (OSError, ProtocolError, asyncio.TimeoutError, ServiceError) as exc:
                # Dead or poisoned connection: drop it and retry fresh —
                # after a backoff, so a dead server sees a probe per
                # backoff window instead of a tight reconnect spin.
                await self.close()
                last_error = exc
                if attempt < self.retries:
                    self.transport_retries += 1
                    delay = _transport_backoff_s(attempt, self.timeout)
                    self.backoff_slept_s += delay
                    await asyncio.sleep(delay)
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                # The raised Overloaded (below, after the last attempt)
                # carries this response, so its retry_after_ms hint
                # survives to the caller even when every attempt was
                # rejected.
                last_error = Overloaded("overloaded", response)
                if attempt < self.retries:
                    await asyncio.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    async def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
        moves_only: bool = False,
    ) -> RebalanceResult:
        message, sent_delta = self._wire.rebalance_message(
            instance, k, shard, deadline_ms, moves_only=moves_only
        )
        start = time.perf_counter()
        response = await self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            self._wire.forget(shard)
            message, _ = self._wire.rebalance_message(
                instance, k, shard, deadline_ms, full=True,
                moves_only=moves_only,
            )
            response = await self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        self._wire.note_response(shard, instance, response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    async def status(self) -> dict[str, Any]:
        response = await self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    async def reset(self, shard: str | None = None) -> list[str]:
        """Reset server shard state; mirrors :meth:`ServiceClient.reset`
        (including dropping the local delta base, so the next snapshot
        goes out full instead of naming a base the server forgot)."""
        message: dict[str, Any] = {"op": "reset"}
        if shard is not None:
            message["shard"] = shard
        response = await self.call(message)
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - reset cannot fail
        self._wire.forget(shard)
        return list(response.get("reset", []))

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"})).get("ok"))
