"""Sync and async clients for the rebalancing service.

Both speak the two wire formats of :mod:`repro.service.protocol` —
``protocol="json"`` (v1 length-prefixed JSON, the default) or
``protocol="binary"`` (v2 frames whose numeric arrays travel as raw
little-endian buffers) — reconnect on transport failure with jittered
exponential backoff (capped at ``timeout``; a dead server is probed,
not hammered), honor the server's ``overloaded`` backpressure (sleep
``retry_after_ms``, then retry, up to ``retries`` times; the
:class:`Overloaded` raised when the final attempt is still overloaded
carries that final response's ``retry_after_ms`` hint so callers can
keep honoring it), and rebuild a full
:class:`~repro.core.result.RebalanceResult` from the response — the
returned object is interchangeable with an in-process solver call,
which is what lets :class:`~repro.websim.policies.ServicePolicy` drive
the simulator through the wire unchanged.

``delta=True`` (binary protocol only) turns on **delta snapshots**: the
client remembers, per shard, the last snapshot the server acknowledged
(by the ``fingerprint`` in its response) and ships only the changed
sites of the next one (:func:`repro.core.instance.compute_delta`).  A
server that no longer holds the base answers ``unknown base`` and the
client transparently resends the full snapshot — delta mode is a pure
bytes-on-wire optimization, never a different answer.  The
``deltas_sent`` / ``fulls_sent`` counters expose how often each path
ran.

:class:`ServiceClient` is the blocking client (tests, simulator
policies, scripts); :class:`AsyncServiceClient` is the asyncio client
the load generator fans out with.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance, compute_delta
from ..core.result import RebalanceResult
from .protocol import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    encode_frame,
    frame_header,
    peek_meta,
    read_frame,
    read_frame_raw,
    read_frame_sync,
    write_frame_sync,
)

__all__ = [
    "AsyncServiceClient",
    "ConnectionClosed",
    "Overloaded",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(Exception):
    """The server answered ``ok: false`` (or the transport failed)."""

    def __init__(self, error: str, response: dict[str, Any] | None = None):
        super().__init__(error)
        self.error = error
        self.response = response or {}


class ConnectionClosed(ServiceError, ConnectionError):
    """The server closed the connection mid-request.

    Inherits :class:`ConnectionError` too so transport-level handlers
    (``except OSError``) see it as the transport failure it is — the
    cluster router fails over on transport errors only, never on
    well-formed error *responses* from a live backend.
    """


class Overloaded(ServiceError):
    """Admission control rejected the request; retry after the hint."""

    @property
    def retry_after_ms(self) -> float:
        return float(self.response.get("retry_after_ms", 5.0))


def _result_from_response(
    instance: Instance, response: dict[str, Any], latency_s: float
) -> RebalanceResult:
    if "mapping" in response:
        mapping = np.asarray(response["mapping"], dtype=np.int64)
    else:
        # Compact (moves_only) response: the mapping is the request's
        # own initial assignment plus the moved sites.
        mapping = np.array(instance.initial, dtype=np.int64)
        moves_idx = np.asarray(response["moves_idx"], dtype=np.int64)
        if moves_idx.shape[0]:
            mapping[moves_idx] = np.asarray(
                response["moves_to"], dtype=np.int64
            )
    assignment = Assignment(instance=instance, mapping=mapping)
    meta: dict[str, Any] = {"service": {"latency_s": latency_s}}
    if "batch" in response:
        meta["service"]["batch"] = response["batch"]
    return RebalanceResult(
        assignment=assignment,
        algorithm=response.get("algorithm", "service"),
        guessed_opt=response.get("guessed_opt"),
        planned_moves=response.get("planned_moves"),
        meta=meta,
    )


def _raise_for(response: dict[str, Any]) -> None:
    error = response.get("error", "unknown error")
    if error == "overloaded":
        raise Overloaded(error, response)
    raise ServiceError(error, response)


# Transport-retry backoff: first retry waits ~50ms, doubling per
# attempt, jittered into [0.5, 1.0] of the nominal delay so a fleet of
# clients losing one server does not reconnect in lockstep.  The cap is
# the client's own timeout — waiting longer than we would wait for a
# response makes no sense.
_BACKOFF_BASE_S = 0.05

# A ``moved`` redirect chain longer than this is a routing loop (e.g.
# two workers each claiming the other owns the shard), not a topology
# to follow.
_MAX_REDIRECTS = 8


def _transport_backoff_s(attempt: int, timeout: float) -> float:
    """Jittered exponential backoff before transport-failure retry
    number ``attempt`` (0-based), capped at ``timeout`` seconds."""
    nominal = min(max(0.0, timeout), _BACKOFF_BASE_S * (2.0 ** attempt))
    return nominal * random.uniform(0.5, 1.0)


class _WireState:
    """Shared protocol/delta bookkeeping of both client flavors.

    One instance may be shared by several :class:`AsyncServiceClient`
    connections (see ``wire_state=``): the delta base is a property of
    the *frontend* that observed the snapshot, not of any single TCP
    connection, and the server resolves bases per shard regardless of
    which connection named them.  With concurrent in-flight requests
    the base can update out of order; a delta against a slightly stale
    base is still correct (the server retains a window of recent
    bases, and "unknown base" falls back to a full snapshot).
    """

    def __init__(self, protocol: str, delta: bool) -> None:
        if protocol not in ("json", "binary"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if delta and protocol != "binary":
            raise ValueError("delta snapshots require the binary protocol")
        self.protocol = protocol
        self.delta = delta
        self.version = PROTOCOL_V2 if protocol == "binary" else PROTOCOL_V1
        # Per shard: (fingerprint hex, instance) of the last snapshot
        # the server acknowledged — the delta base.
        self.bases: dict[str, tuple[str, Instance]] = {}
        # Per shard: the direct port of the sharded-router worker that
        # owns it, learned from ``moved`` redirects.  Empty against a
        # single-process server/router (nothing ever answers ``moved``).
        self.ports: dict[str, int] = {}
        self.deltas_sent = 0
        self.fulls_sent = 0
        self.moved_redirects = 0

    def rebalance_message(
        self,
        instance: Instance,
        k: int,
        shard: str,
        deadline_ms: float | None,
        *,
        full: bool = False,
        op: str = "rebalance",
        moves_only: bool = False,
    ) -> tuple[dict[str, Any], bool]:
        """The request body and whether it carries a delta.

        A delta is only worth sending when it is actually smaller on the
        wire: a full snapshot ships ``3n`` array values, a delta ``4c``
        (the index array rides along), so ``4c < 3n`` is the cutover.
        ``op`` lets the cluster router reuse the same delta machinery
        for node-to-node ``replicate`` frames.  ``moves_only`` asks the
        server for the compact response (moved sites instead of the
        full mapping) — symmetric with deltas, it takes the *response*
        from O(n) to O(moves); servers that do not support it ignore
        the flag and answer with a mapping.
        """
        message: dict[str, Any] = {"op": op, "shard": shard, "k": k}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if moves_only:
            message["moves_only"] = True
        sent_delta = False
        if self.delta and not full:
            base = self.bases.get(shard)
            if base is not None:
                fp_hex, base_instance = base
                delta = compute_delta(base_instance, instance)
                if delta is not None and 4 * len(delta["idx"]) < 3 * instance.num_jobs:
                    message["delta"] = {"base": fp_hex, **delta}
                    sent_delta = True
        if not sent_delta:
            message["instance"] = (
                instance.to_wire() if self.protocol == "binary"
                else instance.to_dict()
            )
        if sent_delta:
            self.deltas_sent += 1
        else:
            self.fulls_sent += 1
        return message, sent_delta

    def note_response(
        self, shard: str, instance: Instance, response: dict[str, Any]
    ) -> None:
        if not self.delta:
            return
        fp_hex = response.get("fingerprint")
        if isinstance(fp_hex, str):
            self.bases[shard] = (fp_hex, instance)

    def note_moved(self, shard: str, port: int) -> None:
        self.ports[shard] = int(port)
        self.moved_redirects += 1

    def forget_port(self, shard: str) -> None:
        """Drop a cached redirect — the worker behind it died or was
        respawned on a fresh port; the shared port re-redirects."""
        self.ports.pop(shard, None)

    def forget(self, shard: str | None) -> None:
        if shard is None:
            self.bases.clear()
        else:
            self.bases.pop(shard, None)


class ServiceClient:
    """Blocking client over lazily (re)connected TCP sockets.

    One request is in flight per client at a time (the protocol is
    request/response per connection); use several clients — or the
    async client — for concurrency.  Against a sharded router the
    client keeps one socket per *port* it has been redirected to
    (shared port plus the direct ports of the workers owning its
    shards); against a plain server only the primary socket exists.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        protocol: str = "json",
        delta: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._wire = _WireState(protocol, delta)
        self._socks: dict[int, socket.socket] = {}
        # Observability for retry behavior (tests pin the no-spin fix).
        self.transport_retries = 0
        self.backoff_slept_s = 0.0

    @property
    def deltas_sent(self) -> int:
        """Rebalance requests that went out as delta frames."""
        return self._wire.deltas_sent

    @property
    def fulls_sent(self) -> int:
        """Rebalance requests that went out as full snapshots."""
        return self._wire.fulls_sent

    @property
    def moved_redirects(self) -> int:
        """``moved`` redirects followed (sharded router only)."""
        return self._wire.moved_redirects

    # -- connection management ----------------------------------------
    def _connection(self, port: int) -> socket.socket:
        sock = self._socks.get(port)
        if sock is None:
            sock = socket.create_connection(
                (self.host, port), timeout=self.timeout
            )
            self._socks[port] = sock
        return sock

    def _drop(self, port: int) -> None:
        sock = self._socks.pop(port, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never blocks us
                pass

    def close(self) -> None:
        for port in list(self._socks):
            self._drop(port)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- raw request/response -----------------------------------------
    def call(
        self,
        message: dict[str, Any],
        *,
        shard: str | None = None,
        encoded: bytes | bytearray | memoryview | None = None,
    ) -> dict[str, Any]:
        """One round-trip, with reconnect-and-retry on transport
        failure (jittered exponential backoff, capped at ``timeout``),
        overload backoff, and ``moved`` redirect following (a redirect
        is routing, not a failure — it does not consume the retry
        budget).  ``encoded`` sends a pre-encoded frame verbatim
        instead of encoding ``message`` (see
        :class:`~repro.service.protocol.RebalanceEncoder`); the bytes
        must stay valid for the duration of the call.  Returns the raw
        response."""
        if shard is None:
            maybe = message.get("shard")
            shard = maybe if isinstance(maybe, str) else None
        last_error: Exception | None = None
        attempt = 0
        redirects = 0
        while attempt <= self.retries:
            port = (
                self._wire.ports.get(shard, self.port)
                if shard is not None else self.port
            )
            try:
                sock = self._connection(port)
                if encoded is not None:
                    sock.sendall(encoded)
                else:
                    write_frame_sync(sock, message, version=self._wire.version)
                response = read_frame_sync(sock)
                if response is None:
                    raise ConnectionClosed("server closed the connection")
            except (OSError, ProtocolError, ServiceError) as exc:
                # Dead or poisoned connection: drop it and retry fresh —
                # after a backoff, so a dead server sees a probe per
                # backoff window instead of a tight reconnect spin.
                self._drop(port)
                if shard is not None and port != self.port:
                    # The cached redirect may outlive its worker (a
                    # respawn listens on a fresh port): fall back to
                    # the shared port, which knows the new owner.
                    self._wire.forget_port(shard)
                last_error = exc
                attempt += 1
                if attempt <= self.retries:
                    self.transport_retries += 1
                    delay = _transport_backoff_s(attempt - 1, self.timeout)
                    self.backoff_slept_s += delay
                    time.sleep(delay)
                continue
            if not response.get("ok") and response.get("error") == "moved":
                target = response.get("port")
                if (
                    shard is not None
                    and isinstance(target, int)
                    and target > 0
                    and redirects < _MAX_REDIRECTS
                ):
                    redirects += 1
                    self._wire.note_moved(shard, target)
                    continue
                last_error = ServiceError("moved", response)
                attempt += 1
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                # The raised Overloaded (below, after the last attempt)
                # carries this response, so its retry_after_ms hint
                # survives to the caller even when every attempt was
                # rejected.
                last_error = Overloaded("overloaded", response)
                attempt += 1
                if attempt <= self.retries:
                    time.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    def call_encoded(
        self,
        frame: bytes | bytearray | memoryview,
        *,
        shard: str | None = None,
    ) -> dict[str, Any]:
        """Round-trip a pre-encoded frame with the full retry/redirect
        machinery of :meth:`call`."""
        return self.call({}, shard=shard, encoded=frame)

    # -- operations ----------------------------------------------------
    def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
        moves_only: bool = False,
    ) -> RebalanceResult:
        """Solve one snapshot remotely; raises :class:`ServiceError` on
        a non-ok response that outlives the retry budget."""
        message, sent_delta = self._wire.rebalance_message(
            instance, k, shard, deadline_ms, moves_only=moves_only
        )
        start = time.perf_counter()
        response = self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            # The server evicted (or restarted past) our base: fall
            # back to a full snapshot, once, and rebase from there.
            self._wire.forget(shard)
            message, _ = self._wire.rebalance_message(
                instance, k, shard, deadline_ms, full=True,
                moves_only=moves_only,
            )
            response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        self._wire.note_response(shard, instance, response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    def status(self) -> dict[str, Any]:
        response = self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    def reset(self, shard: str | None = None) -> list[str]:
        message: dict[str, Any] = {"op": "reset"}
        if shard is not None:
            message["shard"] = shard
        response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - reset cannot fail
        self._wire.forget(shard)
        return list(response.get("reset", []))

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("ok"))


class AsyncServiceClient:
    """Asyncio client over one stream pair; same retry semantics."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        protocol: str = "json",
        delta: bool = False,
        wire_state: _WireState | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        # A caller-supplied wire state shares the delta-base registry
        # (and delta/full counters and the moved-port cache) across a
        # pool of connections.
        self._wire = wire_state if wire_state is not None else _WireState(protocol, delta)
        self._streams: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        # Observability for retry behavior (tests pin the no-spin fix).
        self.transport_retries = 0
        self.backoff_slept_s = 0.0

    @property
    def deltas_sent(self) -> int:
        """Rebalance requests that went out as delta frames."""
        return self._wire.deltas_sent

    @property
    def fulls_sent(self) -> int:
        """Rebalance requests that went out as full snapshots."""
        return self._wire.fulls_sent

    @property
    def moved_redirects(self) -> int:
        """``moved`` redirects followed (sharded router only)."""
        return self._wire.moved_redirects

    async def _connection(
        self, port: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        streams = self._streams.get(port)
        if streams is None:
            streams = await asyncio.wait_for(
                asyncio.open_connection(self.host, port), self.timeout
            )
            self._streams[port] = streams
        return streams

    async def _drop(self, port: int) -> None:
        streams = self._streams.pop(port, None)
        if streams is not None:
            _, writer = streams
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def close(self) -> None:
        for port in list(self._streams):
            await self._drop(port)

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def call(
        self,
        message: dict[str, Any],
        *,
        shard: str | None = None,
        encoded: bytes | bytearray | memoryview | None = None,
    ) -> dict[str, Any]:
        """One round-trip with reconnect/overload retry (async).

        Same semantics as :meth:`ServiceClient.call`: transport
        failures back off exponentially with jitter (capped at
        ``timeout``) before the reconnect, overloaded responses sleep
        the server's ``retry_after_ms`` hint, ``moved`` redirects are
        followed without consuming the retry budget, and the final
        attempt's failure is what the caller sees.
        """
        if shard is None:
            maybe = message.get("shard")
            shard = maybe if isinstance(maybe, str) else None
        last_error: Exception | None = None
        attempt = 0
        redirects = 0
        while attempt <= self.retries:
            port = (
                self._wire.ports.get(shard, self.port)
                if shard is not None else self.port
            )
            try:
                reader, writer = await self._connection(port)
                if encoded is not None:
                    writer.write(encoded)
                else:
                    writer.write(
                        encode_frame(message, version=self._wire.version)
                    )
                await writer.drain()
                response = await asyncio.wait_for(
                    read_frame(reader), self.timeout
                )
                if response is None:
                    raise ConnectionClosed("server closed the connection")
            except (OSError, ProtocolError, asyncio.TimeoutError, ServiceError) as exc:
                # Dead or poisoned connection: drop it and retry fresh —
                # after a backoff, so a dead server sees a probe per
                # backoff window instead of a tight reconnect spin.
                await self._drop(port)
                if shard is not None and port != self.port:
                    # The cached redirect may outlive its worker (a
                    # respawn listens on a fresh port): fall back to
                    # the shared port, which knows the new owner.
                    self._wire.forget_port(shard)
                last_error = exc
                attempt += 1
                if attempt <= self.retries:
                    self.transport_retries += 1
                    delay = _transport_backoff_s(attempt - 1, self.timeout)
                    self.backoff_slept_s += delay
                    await asyncio.sleep(delay)
                continue
            if not response.get("ok") and response.get("error") == "moved":
                target = response.get("port")
                if (
                    shard is not None
                    and isinstance(target, int)
                    and target > 0
                    and redirects < _MAX_REDIRECTS
                ):
                    redirects += 1
                    self._wire.note_moved(shard, target)
                    continue
                last_error = ServiceError("moved", response)
                attempt += 1
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                # The raised Overloaded (below, after the last attempt)
                # carries this response, so its retry_after_ms hint
                # survives to the caller even when every attempt was
                # rejected.
                last_error = Overloaded("overloaded", response)
                attempt += 1
                if attempt <= self.retries:
                    await asyncio.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    async def call_encoded(
        self,
        frame: bytes | bytearray | memoryview,
        *,
        shard: str | None = None,
    ) -> dict[str, Any]:
        """Round-trip a pre-encoded frame with the full retry/redirect
        machinery of :meth:`call`."""
        return await self.call({}, shard=shard, encoded=frame)

    async def relay(
        self, body: bytes | bytearray | memoryview, version: int
    ) -> tuple[dict[str, Any], bytes, int]:
        """Round-trip a raw frame *body* verbatim — the
        zero-materialization path of the sharded-router data plane.

        Sends ``frame_header + body``, reads the response frame without
        decoding its arrays, and returns ``(response_meta, raw_response
        body, response_version)`` — the meta (via
        :func:`~repro.service.protocol.peek_meta`) is enough to decide
        ok/fingerprint/error, and the raw body can be relayed onward
        byte-for-byte.  No retries: a transport failure is routing
        signal for the caller, which replays on another node.
        """
        port = self.port
        try:
            reader, writer = await self._connection(port)
            writer.write(frame_header(len(body), version=version))
            writer.write(body)
            await writer.drain()
            raw = await asyncio.wait_for(read_frame_raw(reader), self.timeout)
            if raw is None:
                raise ConnectionClosed("server closed the connection")
        except BaseException:
            # Also covers cancellation mid-frame: a half-read
            # connection must not be reused.
            await self._drop(port)
            raise
        resp_body, resp_version = raw
        if resp_version == PROTOCOL_V2:
            meta = peek_meta(resp_body)
        else:
            meta = json.loads(bytes(resp_body).decode("utf-8"))
        return meta, resp_body, resp_version

    async def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
        moves_only: bool = False,
    ) -> RebalanceResult:
        message, sent_delta = self._wire.rebalance_message(
            instance, k, shard, deadline_ms, moves_only=moves_only
        )
        start = time.perf_counter()
        response = await self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            self._wire.forget(shard)
            message, _ = self._wire.rebalance_message(
                instance, k, shard, deadline_ms, full=True,
                moves_only=moves_only,
            )
            response = await self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        self._wire.note_response(shard, instance, response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    async def status(self) -> dict[str, Any]:
        response = await self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    async def reset(self, shard: str | None = None) -> list[str]:
        """Reset server shard state; mirrors :meth:`ServiceClient.reset`
        (including dropping the local delta base, so the next snapshot
        goes out full instead of naming a base the server forgot)."""
        message: dict[str, Any] = {"op": "reset"}
        if shard is not None:
            message["shard"] = shard
        response = await self.call(message)
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - reset cannot fail
        self._wire.forget(shard)
        return list(response.get("reset", []))

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"})).get("ok"))
