"""Sync and async clients for the rebalancing service.

Both speak the length-prefixed JSON protocol of
:mod:`repro.service.protocol`, reconnect on transport failure, honor
the server's ``overloaded`` backpressure (sleep ``retry_after_ms``,
then retry, up to ``retries`` times), and rebuild a full
:class:`~repro.core.result.RebalanceResult` from the response — the
returned object is interchangeable with an in-process solver call,
which is what lets :class:`~repro.websim.policies.ServicePolicy` drive
the simulator through the wire unchanged.

:class:`ServiceClient` is the blocking client (tests, simulator
policies, scripts); :class:`AsyncServiceClient` is the asyncio client
the load generator fans out with.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult
from .protocol import (
    ProtocolError,
    encode_frame,
    read_frame,
    read_frame_sync,
    write_frame_sync,
)

__all__ = [
    "AsyncServiceClient",
    "Overloaded",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(Exception):
    """The server answered ``ok: false`` (or the transport failed)."""

    def __init__(self, error: str, response: dict[str, Any] | None = None):
        super().__init__(error)
        self.error = error
        self.response = response or {}


class Overloaded(ServiceError):
    """Admission control rejected the request; retry after the hint."""

    @property
    def retry_after_ms(self) -> float:
        return float(self.response.get("retry_after_ms", 5.0))


def _result_from_response(
    instance: Instance, response: dict[str, Any], latency_s: float
) -> RebalanceResult:
    assignment = Assignment(
        instance=instance,
        mapping=np.asarray(response["mapping"], dtype=np.int64),
    )
    meta: dict[str, Any] = {"service": {"latency_s": latency_s}}
    if "batch" in response:
        meta["service"]["batch"] = response["batch"]
    return RebalanceResult(
        assignment=assignment,
        algorithm=response.get("algorithm", "service"),
        guessed_opt=response.get("guessed_opt"),
        planned_moves=response.get("planned_moves"),
        meta=meta,
    )


def _raise_for(response: dict[str, Any]) -> None:
    error = response.get("error", "unknown error")
    if error == "overloaded":
        raise Overloaded(error, response)
    raise ServiceError(error, response)


class ServiceClient:
    """Blocking client over one lazily (re)connected TCP socket.

    One request is in flight per client at a time (the protocol is
    request/response per connection); use several clients — or the
    async client — for concurrency.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._sock: socket.socket | None = None

    # -- connection management ----------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- raw request/response -----------------------------------------
    def call(self, message: dict[str, Any]) -> dict[str, Any]:
        """One round-trip, with reconnect-and-retry on transport
        failure and overload backoff.  Returns the raw response."""
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                sock = self._connection()
                write_frame_sync(sock, message)
                response = read_frame_sync(sock)
            except (OSError, ProtocolError) as exc:
                # Dead or poisoned connection: drop it and retry fresh.
                self.close()
                last_error = exc
                continue
            if response is None:
                self.close()
                last_error = ServiceError("server closed the connection")
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                last_error = Overloaded("overloaded", response)
                if attempt < self.retries:
                    time.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    # -- operations ----------------------------------------------------
    def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
    ) -> RebalanceResult:
        """Solve one snapshot remotely; raises :class:`ServiceError` on
        a non-ok response that outlives the retry budget."""
        message: dict[str, Any] = {
            "op": "rebalance",
            "shard": shard,
            "k": k,
            "instance": instance.to_dict(),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        start = time.perf_counter()
        response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    def status(self) -> dict[str, Any]:
        response = self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    def reset(self, shard: str | None = None) -> list[str]:
        message: dict[str, Any] = {"op": "reset"}
        if shard is not None:
            message["shard"] = shard
        response = self.call(message)
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - reset cannot fail
        return list(response.get("reset", []))

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("ok"))


class AsyncServiceClient:
    """Asyncio client over one stream pair; same retry semantics."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 3,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._streams: tuple[asyncio.StreamReader, asyncio.StreamWriter] | None = None

    async def _connection(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._streams is None:
            self._streams = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        return self._streams

    async def close(self) -> None:
        if self._streams is not None:
            _, writer = self._streams
            self._streams = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def call(self, message: dict[str, Any]) -> dict[str, Any]:
        """One round-trip with reconnect/overload retry (async)."""
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                reader, writer = await self._connection()
                writer.write(encode_frame(message))
                await writer.drain()
                response = await asyncio.wait_for(
                    read_frame(reader), self.timeout
                )
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                await self.close()
                last_error = exc
                continue
            if response is None:
                await self.close()
                last_error = ServiceError("server closed the connection")
                continue
            if not response.get("ok") and response.get("error") == "overloaded":
                last_error = Overloaded("overloaded", response)
                if attempt < self.retries:
                    await asyncio.sleep(
                        float(response.get("retry_after_ms", 5.0)) / 1e3
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    async def rebalance(
        self,
        instance: Instance,
        k: int,
        *,
        shard: str = "default",
        deadline_ms: float | None = None,
    ) -> RebalanceResult:
        message: dict[str, Any] = {
            "op": "rebalance",
            "shard": shard,
            "k": k,
            "instance": instance.to_dict(),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        start = time.perf_counter()
        response = await self.call(message)
        if not response.get("ok"):
            _raise_for(response)
        return _result_from_response(
            instance, response, time.perf_counter() - start
        )

    async def status(self) -> dict[str, Any]:
        response = await self.call({"op": "status"})
        if not response.get("ok"):
            _raise_for(response)  # pragma: no cover - status cannot fail
        return response

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"})).get("ok"))
