"""The asyncio rebalancing server.

``queue → batcher → engine pool``: connections are parsed on the event
loop, admitted into the bounded :class:`~repro.service.admission.AdmissionQueue`,
drained by the :class:`~repro.service.batching.MicroBatcher`, and solved
by per-shard warm :class:`~repro.core.engine.RebalanceEngine` instances,
so every shard's epoch stream hits the threshold-table and fingerprint
caches exactly as an in-process engine would.  The event loop never
blocks on a solve: each batch is one ``run_in_executor`` hop.

Two shard executors (``ServerConfig.executor``):

* ``"thread"`` (default) — shard engines live in this process; the
  executor hop fans independent shard lanes out via
  :func:`repro.parallel.run_sweep` worker threads.  Zero setup cost,
  but all lanes share the GIL.
* ``"process"`` — shard engines live in ``process_workers`` long-lived
  worker processes (:class:`repro.parallel.PersistentWorkerPool`);
  every shard is pinned to one worker by a stable hash, so its warm
  engine state survives across batches exactly as in thread mode.
  Request arrays cross the pipe in the v2 binary codec
  (:func:`repro.service.protocol.pack_payload` — raw buffers, no JSON,
  no pickle), and independent shards use real cores instead of threads
  contending on the GIL.

The server speaks both wire formats of :mod:`repro.service.protocol`
(v1 length-prefixed JSON and v2 binary with delta frames) on one port
and answers each request in the format it arrived in.  Delta frames
resolve against a per-shard LRU of recent snapshots keyed by
fingerprint, so steady-state clients ship only changed sites and the
warm engine patches only changed buckets — the server never rebuilds
what it already holds.

Decisions are byte-identical to in-process
:func:`repro.core.partition.m_partition_rebalance` calls on the same
snapshots (the engine's transparent-acceleration contract, plus the
batcher's dedupe only collapsing byte-identical snapshots); the
end-to-end websim differential test pins this across v1-JSON,
v2-binary, and v2-delta transports.

:class:`ServerConfig.naive` is the control: batch size 1, no dedupe,
no warm engine — the one-request-per-solve server benchmark E14
measures against.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any
from zlib import crc32

from .. import telemetry
from ..core.engine import RebalanceEngine, snapshot_fingerprint
from ..core.instance import Instance, apply_delta
from ..core.partition import m_partition_rebalance
from ..parallel import PersistentWorkerPool, run_sweep
from .admission import AdmissionQueue, PendingRequest
from .batching import BatchConfig, MicroBatcher, ShardLane
from .protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    pack_payload,
    read_frame_versioned,
    unpack_payload,
)

__all__ = [
    "RebalanceServer",
    "ServerConfig",
    "ServerHandle",
    "ShardState",
    "start_background",
]


@dataclass(frozen=True)
class ServerConfig:
    """Everything the service's behavior depends on."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read it back from Server.port
    max_batch: int = 16
    max_wait_ms: float = 2.0
    dedupe: bool = True
    use_engine: bool = True
    max_queue: int = 128
    solver_workers: int = 4
    engine_cache_size: int = 64
    executor: str = "thread"  # "thread" | "process"
    process_workers: int = 2
    base_cache_size: int = 32  # delta base snapshots kept per shard

    def __post_init__(self) -> None:
        if self.executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.executor == "process" and self.process_workers <= 0:
            raise ValueError("process_workers must be positive")
        if self.base_cache_size < 0:
            raise ValueError("base_cache_size must be non-negative")

    @classmethod
    def naive(cls, **overrides: Any) -> "ServerConfig":
        """The one-request-per-solve control server: no batching, no
        dedupe, no warm engine — every request is a from-scratch
        ``m_partition_rebalance`` call."""
        return replace(
            cls(max_batch=1, dedupe=False, use_engine=False), **overrides
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "dedupe": self.dedupe,
            "use_engine": self.use_engine,
            "max_queue": self.max_queue,
            "solver_workers": self.solver_workers,
            "engine_cache_size": self.engine_cache_size,
            "executor": self.executor,
            "process_workers": self.process_workers,
            "base_cache_size": self.base_cache_size,
        }


@dataclass
class ShardState:
    """One named shard: a move budget and (optionally) a warm engine."""

    name: str
    k: int
    engine: RebalanceEngine | None
    decisions: int = 0

    def stats(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "decisions": self.decisions,
            "engine": self.engine.stats.as_dict() if self.engine else None,
        }


def _get_shard_state(
    shards: dict[str, ShardState],
    name: str,
    k: int,
    use_engine: bool,
    engine_cache_size: int,
) -> tuple[ShardState, bool]:
    """The shard's state, (re)building its engine on a ``k`` change.

    An engine is pinned to one move budget; a request that switches a
    shard's ``k`` retires the warm engine and starts cold (counted in
    ``service.shard_rebuilds`` — keep per-``k`` streams on separate
    shards to avoid the churn).  Shared by the in-process thread path
    and the worker processes; returns ``(state, rebuilt)``.
    """
    state = shards.get(name)
    rebuilt = False
    if state is None:
        state = ShardState(
            name=name,
            k=k,
            engine=RebalanceEngine(k=k, cache_size=engine_cache_size)
            if use_engine else None,
        )
        shards[name] = state
    elif state.k != k:
        rebuilt = True
        state.k = k
        if use_engine:
            state.engine = RebalanceEngine(k=k, cache_size=engine_cache_size)
    return state, rebuilt


def _solve_one(
    state: ShardState, instance: Instance, k: int, fingerprint: bytes | None
) -> dict[str, Any]:
    """One solve on one shard; never raises (a failed solve must not
    take the batch loop — or a worker process — down with it)."""
    try:
        if state.engine is not None:
            result = state.engine.rebalance(instance, fingerprint=fingerprint)
        else:
            result = m_partition_rebalance(instance, k)
        state.decisions += 1
        return ok_response(
            mapping=result.assignment.mapping,
            guessed_opt=float(result.guessed_opt),
            planned_moves=int(result.planned_moves),
            algorithm=result.algorithm,
            shard=state.name,
        )
    except Exception as exc:
        return error_response(
            "solve failed", message=f"{type(exc).__name__}: {exc}"
        )


# ----------------------------------------------------------------------
# Process-executor worker side (runs in spawned worker processes)
# ----------------------------------------------------------------------
_WORKER: dict[str, Any] = {}


def _process_worker_init(config: dict[str, Any]) -> None:
    """Per-worker initializer: remember the engine config, start empty."""
    _WORKER["config"] = config
    _WORKER["shards"] = {}
    _WORKER["rebuilds"] = 0


def _process_worker_handle(payload: bytes) -> bytes:
    """Worker request loop body: binary codec in, binary codec out."""
    message = unpack_payload(payload)
    op = message.get("op")
    config = _WORKER["config"]
    shards: dict[str, ShardState] = _WORKER["shards"]
    if op == "solve":
        lanes_out = []
        for lane in message["lanes"]:
            name = str(lane["shard"])
            responses = []
            for solve in lane["solves"]:
                k = int(solve["k"])
                state, rebuilt = _get_shard_state(
                    shards, name, k,
                    config["use_engine"], config["engine_cache_size"],
                )
                if rebuilt:
                    _WORKER["rebuilds"] += 1
                instance = Instance.from_dict(solve["instance"])
                fingerprint = bytes.fromhex(solve["fp"])
                responses.append(_solve_one(state, instance, k, fingerprint))
            lanes_out.append(responses)
        return pack_payload({"lanes": lanes_out})
    if op == "reset":
        names = message.get("shards")
        names = list(shards) if names is None else [str(n) for n in names]
        reset = []
        for name in names:
            state = shards.get(name)
            if state is None:
                continue
            if state.engine is not None:
                state.engine.reset()
            state.decisions = 0
            reset.append(name)
        return pack_payload({"reset": reset})
    if op == "stats":
        return pack_payload({
            "shards": {name: state.stats() for name, state in shards.items()},
            "rebuilds": _WORKER["rebuilds"],
        })
    raise ValueError(f"unknown worker op {op!r}")


class RebalanceServer:
    """Dual-protocol TCP server around a pool of shard engines."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = telemetry.Collector()
        self.shards: dict[str, ShardState] = {}
        self.queue = AdmissionQueue(self.config.max_queue, self.metrics)
        self.batcher = MicroBatcher(
            self.queue,
            BatchConfig(
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_wait_ms,
                dedupe=self.config.dedupe,
            ),
            self.metrics,
        )
        # Delta bases: per shard, the last few snapshots by fingerprint
        # hex.  Lives in the serving process (deltas must materialize
        # before admission/batching), regardless of the executor.
        self._bases: dict[str, OrderedDict[str, Instance]] = {}
        self._server: asyncio.AbstractServer | None = None
        self._batch_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pool: PersistentWorkerPool | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, start accepting connections, and start the batch loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop_event = asyncio.Event()
        if self.config.executor == "process":
            # Spawned workers import the package fresh; blocking here
            # until every ready handshake lands keeps `start` returning
            # a genuinely warm server.
            self._pool = PersistentWorkerPool(
                _process_worker_handle,
                self.config.process_workers,
                initializer=_process_worker_init,
                initargs=({
                    "use_engine": self.config.use_engine,
                    "engine_cache_size": self.config.engine_cache_size,
                },),
            )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()
        self._batch_task = asyncio.create_task(self._batch_loop())

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (same-loop callers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop`, then shut down cleanly."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, and release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        # Fail anything still queued so no handler awaits forever.
        for request in self.queue.drain_nowait():
            if not request.future.done():
                request.future.set_result(error_response("shutting down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.add("service.connections")
        try:
            while True:
                try:
                    frame = await read_frame_versioned(reader)
                except ProtocolError as exc:
                    self.metrics.add("service.protocol_errors")
                    writer.write(encode_frame(error_response(
                        "protocol error", message=str(exc))))
                    await writer.drain()
                    break
                if frame is None:
                    break
                message, version = frame
                response = await self._dispatch(message)
                # Answer in the format the request arrived in: implicit
                # per-frame negotiation, old JSON clients never see v2.
                writer.write(encode_frame(response, version=version))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "rebalance":
            return await self._op_rebalance(message)
        if op == "status":
            return await self._op_status()
        if op == "reset":
            return await self._op_reset(message)
        if op == "ping":
            return ok_response(op="ping")
        self.metrics.add("service.protocol_errors")
        return error_response("unknown op", op=op)

    # ------------------------------------------------------------------
    # Delta bases
    # ------------------------------------------------------------------
    def _remember_base(self, shard: str, fp_hex: str, instance: Instance) -> None:
        if self.config.base_cache_size == 0:
            return
        bases = self._bases.get(shard)
        if bases is None:
            bases = self._bases[shard] = OrderedDict()
        bases[fp_hex] = instance
        bases.move_to_end(fp_hex)
        while len(bases) > self.config.base_cache_size:
            bases.popitem(last=False)

    def _base_for(self, shard: str, fp_hex: str) -> Instance | None:
        bases = self._bases.get(shard)
        if bases is None:
            return None
        instance = bases.get(fp_hex)
        if instance is not None:
            bases.move_to_end(fp_hex)
        return instance

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_rebalance(self, message: dict[str, Any]) -> dict[str, Any]:
        self.metrics.add("service.requests")
        loop = asyncio.get_running_loop()
        try:
            shard = str(message.get("shard", "default"))
            k = int(message.get("k", 2))
            if k < 0:
                raise ValueError("k must be non-negative")
            delta = message.get("delta")
            if delta is not None:
                base = self._base_for(shard, str(delta.get("base", "")))
                if base is None:
                    # Not an error in the protocol sense: the client
                    # holds a fingerprint this server no longer (or
                    # never) had, and falls back to a full snapshot.
                    self.metrics.add("service.delta_misses")
                    return error_response("unknown base", shard=shard)
                instance = apply_delta(base, delta)
                self.metrics.add("service.delta_applied")
            else:
                instance = Instance.from_dict(message["instance"])
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("service.bad_requests")
            return error_response("bad request", message=str(exc))

        fingerprint = snapshot_fingerprint(instance)
        fp_hex = fingerprint.hex()
        self._remember_base(shard, fp_hex, instance)
        deadline_ms = message.get("deadline_ms")
        now = loop.time()
        request = PendingRequest(
            shard=shard,
            k=k,
            instance=instance,
            fingerprint=fingerprint,
            enqueued_at=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
            future=loop.create_future(),
        )
        if not self.queue.try_submit(request):
            return error_response(
                "overloaded", retry_after_ms=self.queue.retry_after_ms()
            )
        response = await request.future
        latency_ms = 1e3 * (loop.time() - request.enqueued_at)
        self.metrics.observe("service.latency_ms", latency_ms)
        if response.get("ok"):
            self.metrics.add("service.ok")
            # The fingerprint names this snapshot as a future delta
            # base.  Copy before annotating: deduped requests share one
            # response object.
            response = dict(response)
            response["fingerprint"] = fp_hex
        return response

    async def _op_status(self) -> dict[str, Any]:
        shards = {name: s.stats() for name, s in self.shards.items()}
        if self._pool is not None:
            # Worker pipes are only ever driven from the solve thread;
            # hop there so stats never race an in-flight batch.
            loop = asyncio.get_running_loop()
            assert self._executor is not None
            shards = await loop.run_in_executor(self._executor, self._pool_stats)
        return ok_response(
            uptime_s=time.monotonic() - self._started_at,
            config=self.config.as_dict(),
            queue=self.queue.stats(),
            shards=shards,
            metrics=self.metrics.as_dict(),
        )

    def _pool_stats(self) -> dict[str, Any]:
        assert self._pool is not None
        shards: dict[str, Any] = {}
        for reply in self._pool.broadcast(pack_payload({"op": "stats"})).values():
            stats = unpack_payload(reply)
            shards.update(stats["shards"])
        return shards

    async def _op_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        shard = message.get("shard")
        names = [str(shard)] if shard is not None else None
        for name in (names if names is not None else list(self._bases)):
            self._bases.pop(name, None)
        if self._pool is not None:
            loop = asyncio.get_running_loop()
            assert self._executor is not None
            reset = await loop.run_in_executor(
                self._executor, self._pool_reset, names
            )
        else:
            reset = []
            for name in (names if names is not None else list(self.shards)):
                state = self.shards.get(name)
                if state is None:
                    continue
                if state.engine is not None:
                    state.engine.reset()
                state.decisions = 0
                reset.append(name)
        self.metrics.add("service.resets")
        return ok_response(reset=sorted(set(reset)))

    def _pool_reset(self, names: list[str] | None) -> list[str]:
        assert self._pool is not None
        payload = pack_payload({"op": "reset", "shards": names})
        reset: list[str] = []
        for reply in self._pool.broadcast(payload).values():
            reset.extend(unpack_payload(reply)["reset"])
        return reset

    # ------------------------------------------------------------------
    # Batch loop and solving
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.batcher.next_batch()
            try:
                await self._serve_batch(batch, loop)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # must never strand awaiting
                # handlers: fail the whole batch and keep serving.
                self.metrics.add("service.solve_errors")
                failure = error_response(
                    "internal error", message=f"{type(exc).__name__}: {exc}"
                )
                for request in batch:
                    if not request.future.done():
                        request.future.set_result(failure)

    async def _serve_batch(
        self, batch: list[PendingRequest], loop: asyncio.AbstractEventLoop
    ) -> None:
        batch = self.queue.shed_expired(batch, loop.time())
        if not batch:
            return
        lanes = self.batcher.plan(batch)
        start = loop.time()
        assert self._executor is not None
        outcomes = await loop.run_in_executor(
            self._executor, self._solve_lanes, lanes
        )
        elapsed = loop.time() - start
        self.metrics.record_span("service.solve", elapsed)
        self.queue.note_service_time(elapsed / len(batch))
        batch_info = {
            "size": len(batch),
            "unique": sum(len(lane.solves) for lane in lanes),
            "solve_ms": 1e3 * elapsed,
        }
        for lane, lane_outcomes in zip(lanes, outcomes):
            for solve, outcome in zip(lane.solves, lane_outcomes):
                if isinstance(outcome, dict) and outcome.get("ok"):
                    outcome["batch"] = batch_info
                else:
                    self.metrics.add("service.solve_errors")
                for request in solve.requests:
                    if not request.future.done():
                        request.future.set_result(outcome)

    def _solve_lanes(self, lanes: list[ShardLane]) -> list[list[dict[str, Any]]]:
        """Executor-side: fan independent shard lanes out.

        Returns, per lane, one response dict per unique solve (in lane
        order).  Runs on the dedicated solve thread; shard states are
        only ever touched from here (one batch at a time), so engines
        need no locking in either executor mode.
        """
        if self._pool is not None:
            return self._solve_lanes_process(lanes)
        return run_sweep(
            self._solve_lane,
            lanes,
            workers=min(self.config.solver_workers, max(1, len(lanes))),
            executor="thread",
        )

    def _solve_lane(self, lane: ShardLane) -> list[dict[str, Any]]:
        responses = []
        for solve in lane.solves:
            state, rebuilt = _get_shard_state(
                self.shards, lane.shard, solve.k,
                self.config.use_engine, self.config.engine_cache_size,
            )
            if rebuilt:
                self.metrics.add("service.shard_rebuilds")
            responses.append(_solve_one(
                state, solve.instance, solve.k,
                solve.requests[0].fingerprint,
            ))
        return responses

    def _worker_for(self, shard: str) -> int:
        """Stable shard → worker affinity (``hash()`` is per-process
        seeded, so crc32 it is)."""
        return crc32(shard.encode("utf-8")) % self.config.process_workers

    def _solve_lanes_process(
        self, lanes: list[ShardLane]
    ) -> list[list[dict[str, Any]]]:
        """Route lanes to their affine workers over the binary codec."""
        groups: dict[int, list[int]] = {}
        for index, lane in enumerate(lanes):
            groups.setdefault(self._worker_for(lane.shard), []).append(index)
        assignments: dict[int, bytes] = {}
        for worker, lane_indices in groups.items():
            payload = pack_payload({
                "op": "solve",
                "lanes": [
                    {
                        "shard": lanes[i].shard,
                        "solves": [
                            {
                                "k": solve.k,
                                "fp": solve.requests[0].fingerprint.hex(),
                                "instance": solve.instance.to_wire(),
                            }
                            for solve in lanes[i].solves
                        ],
                    }
                    for i in lane_indices
                ],
            })
            self.metrics.add("service.ipc_bytes_out", len(payload))
            assignments[worker] = payload
        assert self._pool is not None
        replies = self._pool.request(assignments)
        results: list[list[dict[str, Any]]] = [[] for _ in lanes]
        for worker, lane_indices in groups.items():
            reply = replies[worker]
            self.metrics.add("service.ipc_bytes_in", len(reply))
            for i, lane_out in zip(lane_indices, unpack_payload(reply)["lanes"]):
                results[i] = lane_out
        return results


# ----------------------------------------------------------------------
# Background-thread embedding (tests, benchmarks, loadgen --spawn)
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a private event loop in a daemon thread."""

    def __init__(
        self,
        server: RebalanceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self.host = server.config.host
        self.port = server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_background(config: ServerConfig | None = None) -> ServerHandle:
    """Start a :class:`RebalanceServer` on a daemon thread.

    Blocks until the listener is bound (so ``handle.port`` is valid the
    moment this returns) and re-raises any startup failure in the
    caller.  Use as a context manager for scoped teardown.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            server = RebalanceServer(config)
            try:
                await server.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=60.0):  # pragma: no cover
        raise RuntimeError("server failed to start within 60s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
