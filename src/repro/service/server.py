"""The asyncio rebalancing server.

``queue → batcher → engine pool``: connections are parsed on the event
loop, admitted into the bounded :class:`~repro.service.admission.AdmissionQueue`,
drained by the :class:`~repro.service.batching.MicroBatcher`, and solved
by per-shard warm :class:`~repro.core.engine.RebalanceEngine` instances,
so every shard's epoch stream hits the threshold-table and fingerprint
caches exactly as an in-process engine would.  The event loop never
blocks on a solve: each batch is one ``run_in_executor`` hop.

Two shard executors (``ServerConfig.executor``):

* ``"thread"`` (default) — shard engines live in this process; the
  executor hop fans independent shard lanes out via
  :func:`repro.parallel.run_sweep` worker threads.  Zero setup cost,
  but all lanes share the GIL.
* ``"process"`` — shard engines live in ``process_workers`` long-lived
  worker processes (:class:`repro.parallel.PersistentWorkerPool`);
  every shard is pinned to one worker by a stable hash, so its warm
  engine state survives across batches exactly as in thread mode.
  Request arrays cross the pipe in the v2 binary codec
  (:func:`repro.service.protocol.pack_payload` — raw buffers, no JSON,
  no pickle), and independent shards use real cores instead of threads
  contending on the GIL.

The server speaks both wire formats of :mod:`repro.service.protocol`
(v1 length-prefixed JSON and v2 binary with delta frames) on one port
and answers each request in the format it arrived in.  Delta frames
resolve against a per-shard LRU of recent snapshots keyed by
fingerprint, so steady-state clients ship only changed sites and the
warm engine patches only changed buckets — the server never rebuilds
what it already holds.

Decisions are byte-identical to in-process
:func:`repro.core.partition.m_partition_rebalance` calls on the same
snapshots (the engine's transparent-acceleration contract, plus the
batcher's dedupe only collapsing byte-identical snapshots); the
end-to-end websim differential test pins this across v1-JSON,
v2-binary, and v2-delta transports.

:class:`ServerConfig.naive` is the control: batch size 1, no dedupe,
no warm engine — the one-request-per-solve server benchmark E14
measures against.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any
from zlib import crc32

import numpy as np

from .. import telemetry
from ..core.engine import RebalanceEngine, snapshot_fingerprint
from ..core.instance import Instance, apply_delta
from ..core.partition import m_partition_rebalance
from ..core.result import RebalanceResult
from ..parallel import PersistentWorkerPool, SnapshotRing, run_sweep
from .admission import AdmissionQueue, PendingRequest
from .batching import BatchConfig, MicroBatcher, ShardLane, UniqueSolve
from .resident import ResidentShard, SolveResident
from .protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    pack_payload,
    read_frame_versioned,
    unpack_payload,
)

__all__ = [
    "RebalanceServer",
    "ServerConfig",
    "ServerHandle",
    "ShardState",
    "start_background",
]


@dataclass(frozen=True)
class ServerConfig:
    """Everything the service's behavior depends on."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read it back from Server.port
    max_batch: int = 16
    max_wait_ms: float = 2.0
    dedupe: bool = True
    use_engine: bool = True
    max_queue: int = 128
    solver_workers: int = 4
    engine_cache_size: int = 64
    executor: str = "thread"  # "thread" | "process"
    process_workers: int = 2
    base_cache_size: int = 32  # delta base snapshots kept per shard
    # Shared-memory snapshot plane (process executor only): decoded
    # snapshots are written once into a shm ring and workers rebuild
    # zero-copy views, so solve requests stop carrying arrays.  ``shm``
    # opts out; the slot geometry bounds the plane's footprint at
    # ``shm_slots * shm_slot_bytes``.  The first snapshot too big for
    # one slot grows the ring (slot size doubles until it fits, capped
    # at ``shm_max_slot_bytes``) instead of silently demoting that
    # shard to the inline codec forever; only snapshots beyond the cap
    # keep falling back to inline.
    shm: bool = True
    shm_slots: int = 128
    shm_slot_bytes: int = 1 << 20
    shm_max_slot_bytes: int = 1 << 27
    # Server-side decision memo (process executor only): repeated
    # ``(shard, k, fingerprint)`` solves answer on the event loop
    # without a worker-pipe round trip — the steady-state fast path
    # that keeps p50 at loop latency when the cluster barely changes.
    # 0 disables (the worker's own decision cache still applies).
    decision_cache_size: int = 128
    # Resident shard arrays (thread executor only, needs the warm
    # engine): delta frames are applied in place onto per-shard
    # resident arrays in O(changed sites) — no Instance
    # reconstruction, no full-array rehash — and the engine receives
    # the changed-site set as a churn hint.  ``False`` restores the
    # delta-base LRU path for every request.
    resident: bool = True
    # Synthetic per-solve service-time floor (thread executor only):
    # each solve sleeps this long on the solve thread after computing.
    # Sleeping releases the GIL and the core, so a node's capacity
    # becomes ~1/(solve + floor) regardless of host CPU — the knob
    # capacity-pinned benchmarks (E17) use to measure *cluster* scale-
    # out on machines with fewer cores than backend processes.
    solve_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.executor == "process" and self.process_workers <= 0:
            raise ValueError("process_workers must be positive")
        if self.base_cache_size < 0:
            raise ValueError("base_cache_size must be non-negative")
        if self.shm_slots <= 0:
            raise ValueError("shm_slots must be positive")
        if self.shm_slot_bytes <= 0 or self.shm_slot_bytes % 8:
            raise ValueError("shm_slot_bytes must be positive and 8-byte aligned")
        if self.shm_max_slot_bytes < self.shm_slot_bytes:
            raise ValueError("shm_max_slot_bytes must be >= shm_slot_bytes")
        if self.decision_cache_size < 0:
            raise ValueError("decision_cache_size must be non-negative")
        if self.solve_delay_s < 0:
            raise ValueError("solve_delay_s must be non-negative")
        if self.solve_delay_s and self.executor == "process":
            raise ValueError("solve_delay_s requires the thread executor")

    @classmethod
    def naive(cls, **overrides: Any) -> "ServerConfig":
        """The one-request-per-solve control server: no batching, no
        dedupe, no warm engine — every request is a from-scratch
        ``m_partition_rebalance`` call."""
        return replace(
            cls(
                max_batch=1, dedupe=False, use_engine=False,
                decision_cache_size=0,
            ),
            **overrides,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "dedupe": self.dedupe,
            "use_engine": self.use_engine,
            "max_queue": self.max_queue,
            "solver_workers": self.solver_workers,
            "engine_cache_size": self.engine_cache_size,
            "executor": self.executor,
            "process_workers": self.process_workers,
            "base_cache_size": self.base_cache_size,
            "shm": self.shm,
            "shm_slots": self.shm_slots,
            "shm_slot_bytes": self.shm_slot_bytes,
            "shm_max_slot_bytes": self.shm_max_slot_bytes,
            "decision_cache_size": self.decision_cache_size,
            "resident": self.resident,
            "solve_delay_s": self.solve_delay_s,
        }


@dataclass
class ShardState:
    """One named shard: a move budget and (optionally) a warm engine."""

    name: str
    k: int
    engine: RebalanceEngine | None
    decisions: int = 0

    def stats(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "decisions": self.decisions,
            "engine": self.engine.stats.as_dict() if self.engine else None,
        }


def _get_shard_state(
    shards: dict[str, ShardState],
    name: str,
    k: int,
    use_engine: bool,
    engine_cache_size: int,
) -> tuple[ShardState, bool]:
    """The shard's state, (re)building its engine on a ``k`` change.

    An engine is pinned to one move budget; a request that switches a
    shard's ``k`` retires the warm engine and starts cold (counted in
    ``service.shard_rebuilds`` — keep per-``k`` streams on separate
    shards to avoid the churn).  Shared by the in-process thread path
    and the worker processes; returns ``(state, rebuilt)``.
    """
    state = shards.get(name)
    rebuilt = False
    if state is None:
        state = ShardState(
            name=name,
            k=k,
            engine=RebalanceEngine(k=k, cache_size=engine_cache_size)
            if use_engine else None,
        )
        shards[name] = state
    elif state.k != k:
        rebuilt = True
        state.k = k
        if use_engine:
            state.engine = RebalanceEngine(k=k, cache_size=engine_cache_size)
    return state, rebuilt


def _result_response(state: ShardState, result: RebalanceResult) -> dict[str, Any]:
    return ok_response(
        mapping=result.assignment.mapping,
        guessed_opt=float(result.guessed_opt),
        planned_moves=int(result.planned_moves),
        algorithm=result.algorithm,
        shard=state.name,
    )


def _moves_response(
    state: ShardState, result: RebalanceResult, instance: Instance
) -> dict[str, Any]:
    """Compact response form: the moved sites instead of the mapping.

    O(moves) on the wire instead of O(n) — at a million sites the full
    mapping is the response's dominant cost.  The client reconstructs
    ``mapping = initial.copy(); mapping[moves_idx] = moves_to``.
    """
    mapping = result.assignment.mapping
    # O(moves) when the solver cached its relocation set; identical to
    # the flatnonzero diff (ascending actual relocations) either way.
    moved = result.assignment.moved_jobs
    return ok_response(
        moves_idx=moved,
        moves_to=mapping[moved],
        num_jobs=int(mapping.shape[0]),
        guessed_opt=float(result.guessed_opt),
        planned_moves=int(result.planned_moves),
        algorithm=result.algorithm,
        shard=state.name,
    )


def _solve_one(
    state: ShardState, instance: Instance, k: int, fingerprint: bytes | None
) -> dict[str, Any]:
    """One solve on one shard; never raises (a failed solve must not
    take the batch loop — or a worker process — down with it)."""
    try:
        if state.engine is not None:
            result = state.engine.rebalance(instance, fingerprint=fingerprint)
        else:
            result = m_partition_rebalance(instance, k)
        state.decisions += 1
        return _result_response(state, result)
    except Exception as exc:
        return error_response(
            "solve failed", message=f"{type(exc).__name__}: {exc}"
        )


class _SnapshotPlane:
    """Server-side allocator/accountant for the :class:`SnapshotRing`.

    Keyed by snapshot fingerprint: the first time a fingerprint is seen
    it is written into a free (or recycled) slot; every later reference
    is a dictionary lookup — write-once, attach-many.  A slot is
    recyclable only when nothing can still read it:

    * ``holds`` — delta-base LRU entries referencing the fingerprint
      (one per shard whose LRU holds it);
    * ``pins`` — in-flight requests (pinned from admission until the
      response future resolves, so a slot under a live solve is never
      rewritten mid-read);
    * worker retention — each worker's engines keep the last snapshot
      per shard alive for table diffing; workers report those slots
      with every reply and the plane refuses to recycle them.

    Allocation and hold/pin bookkeeping run on the event loop only;
    the solve thread only replaces per-worker retained maps (atomic
    dict assignment), which is the single cross-thread touch point.
    A retained map is always reported *after* the round whose request
    pins covered the newly retained slots, so the event loop never
    recycles a slot between a worker acquiring it and reporting it.
    """

    def __init__(
        self,
        ring: SnapshotRing,
        metrics: telemetry.Collector,
        *,
        max_slot_bytes: int | None = None,
    ) -> None:
        self.ring = ring
        self.metrics = metrics
        self.max_slot_bytes = max_slot_bytes or ring.slot_bytes
        # Ring epoch: bumped on every grow.  Pin tokens carry the epoch
        # they were issued under so a token from before a swap can
        # neither corrupt the new ring's accounting (``unpin`` ignores
        # it) nor reach a worker as a slot reference (``_wire_solve``
        # falls back to inline arrays for stale-epoch tokens).
        self.epoch = 0
        self.pending_attach = False  # solve thread must re-attach workers
        self._retired: list[SnapshotRing] = []
        self._slot_of: dict[str, int] = {}
        self._fp_of: list[str | None] = [None] * ring.slots
        self._generations: list[int] = [0] * ring.slots
        self._holds: list[int] = [0] * ring.slots
        self._pins: list[int] = [0] * ring.slots
        self._order: OrderedDict[int, None] = OrderedDict()  # assigned, LRU
        self._free: list[int] = list(range(ring.slots - 1, -1, -1))
        self._retained: dict[int, dict[str, int]] = {}  # worker -> shard -> slot

    # -- event-loop side -----------------------------------------------
    def _retained_slots(self) -> set[int]:
        slots: set[int] = set()
        for mapping in self._retained.values():
            slots.update(mapping.values())
        return slots

    def _allocate(self) -> int | None:
        if self._free:
            return self._free.pop()
        retained = self._retained_slots()
        for slot in self._order:  # least recently used first
            if (
                self._holds[slot] == 0
                and self._pins[slot] == 0
                and slot not in retained
            ):
                return slot
        return None

    def _grow(self, needed_bytes: int) -> bool:
        """Swap in a ring with bigger slots (event loop only).

        The first oversize snapshot grows the plane instead of silently
        demoting every request for that shard to the inline codec: slot
        size doubles until the snapshot fits (capped at
        ``max_slot_bytes``), a fresh segment replaces the old one, and
        all bookkeeping resets — outstanding pin/hold references are
        epoch-guarded, and in-flight slot references degrade to the
        stale-segment inline retry.  Workers attach lazily: the solve
        thread broadcasts the new segment before its next batch.
        """
        slot_bytes = self.ring.slot_bytes
        while slot_bytes < needed_bytes:
            slot_bytes *= 2
        if slot_bytes > self.max_slot_bytes:
            self.metrics.add("service.shm_grow_failed")
            return False
        try:
            ring = SnapshotRing.create(self.ring.slots, slot_bytes)
        except OSError:
            self.metrics.add("service.shm_grow_failed")
            return False
        self._retired.append(self.ring)
        self.ring = ring
        self.epoch += 1
        self.pending_attach = True
        self._slot_of.clear()
        self._fp_of = [None] * ring.slots
        # _generations carries over: a slot's counter is monotonic for
        # the server's lifetime, so a reference into a retired segment
        # can never validate against the new segment's contents (the
        # new ring starts with zeroed headers and writes keep counting
        # up from where the old ring left off).
        self._holds = [0] * ring.slots
        self._pins = [0] * ring.slots
        self._order.clear()
        self._free = list(range(ring.slots - 1, -1, -1))
        self._retained.clear()
        self.metrics.add("service.shm_grows")
        return True

    def note_attached(self, epoch: int) -> None:
        """Solve thread: workers now attached to the ``epoch`` ring.

        Retired segments are unlinked here — after the broadcast, so no
        worker can be asked to attach a name that is already gone.  (A
        worker still holding views into a retired segment keeps its own
        mapping alive; unlink only removes the name.)  If the event
        loop grew the ring *again* mid-broadcast, ``pending_attach``
        stays set and the next batch re-broadcasts.
        """
        if self.epoch == epoch:
            self.pending_attach = False
        while self._retired:
            self._retired.pop().close()

    def _ensure(self, fp_hex: str, instance: Instance) -> int | None:
        slot = self._slot_of.get(fp_hex)
        if slot is not None:
            self._order.move_to_end(slot)
            return slot
        if not self.ring.fits(instance.num_jobs):
            self.metrics.add("service.shm_oversize")
            if not self._grow(SnapshotRing.needed_bytes(instance.num_jobs)):
                return None
        slot = self._allocate()
        if slot is None:
            self.metrics.add("service.shm_full")
            return None
        evicted = self._fp_of[slot]
        if evicted is not None:
            del self._slot_of[evicted]
        generation = self._generations[slot] + 1
        self.ring.write(
            slot, generation, instance.sizes, instance.costs, instance.initial
        )
        self._generations[slot] = generation
        self._fp_of[slot] = fp_hex
        self._slot_of[fp_hex] = slot
        self._order[slot] = None
        self._order.move_to_end(slot)
        self.metrics.add("service.shm_writes")
        return slot

    def pin(self, fp_hex: str, instance: Instance) -> tuple[int, int, int] | None:
        """Slot token for one in-flight request (``None`` = no slot:
        uncorrectably oversize snapshot or every slot busy — callers
        fall back to the inline codec path)."""
        slot = self._ensure(fp_hex, instance)
        if slot is None:
            return None
        self._pins[slot] += 1
        return slot, self._generations[slot], self.epoch

    def unpin(self, token: tuple[int, int, int]) -> None:
        slot, _generation, epoch = token
        if epoch != self.epoch:
            return  # pinned before a grow: that ring is gone
        self._pins[slot] = max(0, self._pins[slot] - 1)

    def hold(self, fp_hex: str, instance: Instance) -> None:
        """A delta-base LRU entry now references ``fp_hex``."""
        slot = self._ensure(fp_hex, instance)
        if slot is not None:
            self._holds[slot] += 1

    def release_hold(self, fp_hex: str) -> None:
        slot = self._slot_of.get(fp_hex)
        if slot is not None:
            self._holds[slot] = max(0, self._holds[slot] - 1)

    def stats(self) -> dict[str, Any]:
        return {
            "slots": self.ring.slots,
            "slot_bytes": self.ring.slot_bytes,
            "epoch": self.epoch,
            "assigned": len(self._slot_of),
            "pinned": sum(1 for p in self._pins if p),
            "held": sum(1 for h in self._holds if h),
            "worker_retained": len(self._retained_slots()),
        }

    def close(self) -> None:
        """Unlink every segment this plane ever owned (server stop)."""
        while self._retired:
            self._retired.pop().close()
        self.ring.close()

    # -- solve-thread side ---------------------------------------------
    def note_worker_retained(self, worker: int, mapping: dict[str, Any]) -> None:
        """Replace ``worker``'s retained map (reported with each reply)."""
        self._retained[worker] = {
            str(shard): int(slot) for shard, slot in mapping.items()
        }


# ----------------------------------------------------------------------
# Process-executor worker side (runs in spawned worker processes)
# ----------------------------------------------------------------------
_WORKER: dict[str, Any] = {}


def _process_worker_init(config: dict[str, Any]) -> None:
    """Per-worker initializer: remember the engine config, start empty.

    When the server created a snapshot ring, attach to it here so an
    attach failure surfaces through the pool's ready handshake (the
    server then fails start() instead of limping along half-attached).
    """
    _WORKER["config"] = config
    _WORKER["shards"] = {}
    _WORKER["rebuilds"] = 0
    _WORKER["retained"] = {}
    ring = None
    if config.get("shm_name"):
        ring = SnapshotRing.attach(
            config["shm_name"], config["shm_slots"], config["shm_slot_bytes"]
        )
    _WORKER["ring"] = ring


def _worker_solve_lane(
    lane: dict[str, Any],
    shards: dict[str, ShardState],
    config: dict[str, Any],
    ring: SnapshotRing | None,
    retained: dict[str, int],
) -> list[dict[str, Any]]:
    name = str(lane["shard"])
    responses = []
    for solve in lane["solves"]:
        k = int(solve["k"])
        state, rebuilt = _get_shard_state(
            shards, name, k,
            config["use_engine"], config["engine_cache_size"],
        )
        if rebuilt:
            _WORKER["rebuilds"] += 1
            retained.pop(name, None)  # the old engine's borrow ended
        fingerprint = bytes.fromhex(solve["fp"])
        if state.engine is not None:
            # Fingerprint-only fast path: a decision-cache hit needs no
            # snapshot at all, so shm solves skip even the view rebuild.
            result = state.engine.cached(fingerprint)
            if result is not None:
                state.decisions += 1
                responses.append(_result_response(state, result))
                continue
        slot = solve.get("slot")
        if slot is not None:
            views = None
            if ring is not None:
                views = ring.read(
                    int(slot), int(solve["gen"]), int(solve["n"])
                )
            if views is None:
                # Generation mismatch (or no ring): tell the server to
                # re-send this solve with inline arrays.
                responses.append(error_response("stale segment", shard=name))
                continue
            sizes, costs, initial = views
            instance = Instance(
                sizes=sizes, costs=costs,
                num_processors=int(solve["m"]), initial=initial,
            )
        else:
            instance = Instance.from_dict(solve["instance"])
        responses.append(_solve_one(state, instance, k, fingerprint))
        if state.engine is not None and state.engine.retained_snapshot is instance:
            # The engine's tables now reference this snapshot's arrays;
            # report the slot so the server keeps it off the free list
            # (inline solves clear the previous borrow instead).
            if slot is not None:
                retained[name] = int(slot)
            else:
                retained.pop(name, None)
    return responses


def _process_worker_handle(payload: bytes) -> bytes:
    """Worker request loop body: binary codec in, binary codec out.

    Every reply carries the worker's current ``retained`` map
    (shard -> ring slot its warm engine still references) so the
    server's slot recycling always sees fresh borrows.
    """
    message = unpack_payload(payload)
    op = message.get("op")
    config = _WORKER["config"]
    shards: dict[str, ShardState] = _WORKER["shards"]
    retained: dict[str, int] = _WORKER["retained"]
    if op == "solve":
        ring: SnapshotRing | None = _WORKER.get("ring")
        lanes_out = [
            _worker_solve_lane(lane, shards, config, ring, retained)
            for lane in message["lanes"]
        ]
        return pack_payload({"lanes": lanes_out, "retained": dict(retained)})
    if op == "reset":
        names = message.get("shards")
        names = list(shards) if names is None else [str(n) for n in names]
        reset = []
        for name in names:
            state = shards.get(name)
            if state is None:
                continue
            if state.engine is not None:
                state.engine.reset()
            state.decisions = 0
            retained.pop(name, None)
            reset.append(name)
        return pack_payload({"reset": reset, "retained": dict(retained)})
    if op == "stats":
        return pack_payload({
            "shards": {name: state.stats() for name, state in shards.items()},
            "rebuilds": _WORKER["rebuilds"],
            "retained": dict(retained),
        })
    if op == "attach":
        # The server's snapshot ring grew: swap to the new segment.
        # Engines may still hold views into the old one — its close()
        # leaves the mapping in place while views are live — and the
        # retained map is cleared because those borrows name slots the
        # server no longer tracks.
        old: SnapshotRing | None = _WORKER.get("ring")
        if old is not None:
            old.close()
        _WORKER["ring"] = SnapshotRing.attach(
            str(message["name"]),
            int(message["slots"]),
            int(message["slot_bytes"]),
        )
        retained.clear()
        return pack_payload({"attached": str(message["name"]), "retained": {}})
    raise ValueError(f"unknown worker op {op!r}")


class RebalanceServer:
    """Dual-protocol TCP server around a pool of shard engines."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = telemetry.Collector()
        self.shards: dict[str, ShardState] = {}
        self.queue = AdmissionQueue(self.config.max_queue, self.metrics)
        self.batcher = MicroBatcher(
            self.queue,
            BatchConfig(
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_wait_ms,
                dedupe=self.config.dedupe,
            ),
            self.metrics,
        )
        # Delta bases: per shard, the last few snapshots by fingerprint
        # hex.  Lives in the serving process (deltas must materialize
        # before admission/batching), regardless of the executor.
        self._bases: dict[str, OrderedDict[str, Instance]] = {}
        # Delta-transition memo: per shard, (base fp, delta digest) ->
        # resulting fp.  A steady epoch stream cycles through the same
        # transitions, so a hit skips apply_delta *and* the full-array
        # fingerprint hash — the request decodes in O(changed sites).
        self._transitions: dict[str, OrderedDict[tuple[str, bytes], str]] = {}
        self._transitions_cap = max(64, 4 * self.config.base_cache_size)
        # Server-side decision memo (process executor): (shard, k,
        # fingerprint hex) -> the worker's ok response.  A hit answers
        # without a worker-pipe round trip; identical fingerprints get
        # identical decisions by the engine contract, so replaying the
        # reply is byte-equivalent to re-asking the worker.
        self._decisions: OrderedDict[tuple[str, int, str], dict[str, Any]] = (
            OrderedDict()
        )
        # Resident shard plane (thread executor): per-shard writable
        # arrays + rolling fingerprint on the event loop, their solve-
        # thread mirrors, and an event-loop response memo keyed by
        # ``(shard, k, fingerprint hex, moves_only)``.
        self._resident_enabled = (
            self.config.resident
            and self.config.use_engine
            and self.config.executor == "thread"
            and self.config.base_cache_size > 0
        )
        self._residents: dict[str, ResidentShard] = {}
        self._solve_residents: dict[str, SolveResident] = {}  # solve thread
        self._responses: OrderedDict[
            tuple[str, int, str, bool], dict[str, Any]
        ] = OrderedDict()
        self._plane: _SnapshotPlane | None = None
        self._server: asyncio.AbstractServer | None = None
        self._batch_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pool: PersistentWorkerPool | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, start accepting connections, and start the batch loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop_event = asyncio.Event()
        if self.config.executor == "process":
            ring = None
            if self.config.shm:
                try:
                    ring = SnapshotRing.create(
                        self.config.shm_slots, self.config.shm_slot_bytes
                    )
                except OSError:
                    # No usable /dev/shm (or quota): serve via the
                    # inline codec path exactly as PR 5 did.
                    self.metrics.add("service.shm_unavailable")
            # Spawned workers import the package fresh; blocking here
            # until every ready handshake lands keeps `start` returning
            # a genuinely warm server.  The pool owns the ring: its
            # close() unlinks the segment after the workers exit, and a
            # failed spawn/handshake cleans it up the same way.
            try:
                self._pool = PersistentWorkerPool(
                    _process_worker_handle,
                    self.config.process_workers,
                    initializer=_process_worker_init,
                    initargs=({
                        "use_engine": self.config.use_engine,
                        "engine_cache_size": self.config.engine_cache_size,
                        "shm_name": ring.name if ring is not None else None,
                        "shm_slots": self.config.shm_slots,
                        "shm_slot_bytes": self.config.shm_slot_bytes,
                    },),
                    ring=ring,
                )
            except BaseException:
                if ring is not None:
                    ring.close()  # idempotent if the pool got that far
                raise
            if ring is not None:
                self._plane = _SnapshotPlane(
                    ring, self.metrics,
                    max_slot_bytes=self.config.shm_max_slot_bytes,
                )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()
        self._batch_task = asyncio.create_task(self._batch_loop())

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (same-loop callers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop`, then shut down cleanly."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, and release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        # Fail anything still queued so no handler awaits forever.
        for request in self.queue.drain_nowait():
            if not request.future.done():
                request.future.set_result(error_response("shutting down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()  # also unlinks the original snapshot ring
            self._pool = None
        if self._plane is not None:
            self._plane.close()  # grown rings belong to the plane
            self._plane = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.add("service.connections")
        try:
            while True:
                try:
                    frame = await read_frame_versioned(reader)
                except ProtocolError as exc:
                    self.metrics.add("service.protocol_errors")
                    writer.write(encode_frame(error_response(
                        "protocol error", message=str(exc))))
                    await writer.drain()
                    break
                if frame is None:
                    break
                message, version = frame
                response = await self._dispatch(message)
                # Answer in the format the request arrived in: implicit
                # per-frame negotiation, old JSON clients never see v2.
                writer.write(encode_frame(response, version=version))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "rebalance":
            return await self._op_rebalance(message)
        if op == "status":
            return await self._op_status()
        if op == "reset":
            return await self._op_reset(message)
        if op == "ping":
            return ok_response(op="ping")
        if op == "health":
            return self._op_health()
        if op == "replicate":
            return self._op_replicate(message)
        if op == "migrate":
            return self._op_migrate(message)
        self.metrics.add("service.protocol_errors")
        return error_response("unknown op", op=op)

    # ------------------------------------------------------------------
    # Delta bases
    # ------------------------------------------------------------------
    def _remember_base(self, shard: str, fp_hex: str, instance: Instance) -> None:
        if self.config.base_cache_size == 0:
            return
        bases = self._bases.get(shard)
        if bases is None:
            bases = self._bases[shard] = OrderedDict()
        if fp_hex not in bases and self._plane is not None:
            # The LRU entry keeps the snapshot's ring slot held: the
            # ring is keyed by the same fingerprints as the base cache,
            # so eviction here is what frees slots for recycling.
            self._plane.hold(fp_hex, instance)
        bases[fp_hex] = instance
        bases.move_to_end(fp_hex)
        while len(bases) > self.config.base_cache_size:
            evicted, _ = bases.popitem(last=False)
            if self._plane is not None:
                self._plane.release_hold(evicted)

    def _base_for(self, shard: str, fp_hex: str) -> Instance | None:
        bases = self._bases.get(shard)
        if bases is None:
            return None
        instance = bases.get(fp_hex)
        if instance is not None:
            bases.move_to_end(fp_hex)
        return instance

    def _materialize_delta(
        self, shard: str, base_hex: str, base: Instance, delta: dict[str, Any]
    ) -> tuple[Instance, bytes]:
        """Snapshot + fingerprint for a delta frame, memoized.

        A steady client cycles through a fixed set of epoch
        transitions; hashing the (small) delta arrays identifies a
        repeat, and when the resulting snapshot is still in the base
        LRU the whole decode — ``apply_delta``'s three O(n) copies and
        the O(n) fingerprint hash — collapses to the digest of the
        changed sites.  Raises like ``apply_delta`` on malformed deltas.
        """
        idx = np.asarray(delta["idx"], dtype=np.int64)
        sizes = np.asarray(delta["sizes"], dtype=np.float64)
        costs = np.asarray(delta["costs"], dtype=np.float64)
        initial = np.asarray(delta["initial"], dtype=np.int64)
        h = hashlib.blake2b(digest_size=16)
        for arr in (idx, sizes, costs, initial):
            h.update(arr.tobytes())
        memo = self._transitions.setdefault(shard, OrderedDict())
        key = (base_hex, h.digest())
        known_hex = memo.get(key)
        if known_hex is not None:
            memo.move_to_end(key)
            known = self._base_for(shard, known_hex)
            if known is not None:
                self.metrics.add("service.delta_applied")
                self.metrics.add("service.delta_memo_hits")
                return known, bytes.fromhex(known_hex)
        instance = apply_delta(
            base, {"idx": idx, "sizes": sizes, "costs": costs, "initial": initial}
        )
        self.metrics.add("service.delta_applied")
        fingerprint = snapshot_fingerprint(instance)
        memo[key] = fingerprint.hex()
        while len(memo) > self._transitions_cap:
            memo.popitem(last=False)
        return instance, fingerprint

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_rebalance(self, message: dict[str, Any]) -> dict[str, Any]:
        self.metrics.add("service.requests")
        loop = asyncio.get_running_loop()
        try:
            shard = str(message.get("shard", "default"))
            k = int(message.get("k", 2))
            if k < 0:
                raise ValueError("k must be non-negative")
            # Deadline parsing lives inside the guarded block: a
            # non-numeric deadline is a bad request, not a connection-
            # killing TypeError.
            deadline_ms = message.get("deadline_ms")
            if deadline_ms is not None:
                if isinstance(deadline_ms, bool) or not isinstance(
                    deadline_ms, (int, float)
                ):
                    raise ValueError("deadline_ms must be a number")
                deadline_ms = float(deadline_ms)
                if not math.isfinite(deadline_ms):
                    raise ValueError("deadline_ms must be finite")
            moves_only = bool(message.get("moves_only", False))
            delta = message.get("delta")
            if delta is not None:
                base_hex = str(delta.get("base", ""))
                if self._resident_enabled:
                    res = self._residents.get(shard)
                    if res is not None and base_hex == res.fp_hex:
                        # The O(churn) path: the delta lands on the
                        # resident tip — no Instance is ever built.
                        return await self._resident_delta(
                            shard, k, deadline_ms, moves_only, res, delta
                        )
                base = self._base_for(shard, base_hex)
                if base is None:
                    # Not an error in the protocol sense: the client
                    # holds a fingerprint this server no longer (or
                    # never) had, and falls back to a full snapshot.
                    self.metrics.add("service.delta_misses")
                    return error_response("unknown base", shard=shard)
                instance, fingerprint = self._materialize_delta(
                    shard, base_hex, base, delta
                )
            else:
                instance = Instance.from_dict(message["instance"])
                fingerprint = snapshot_fingerprint(instance)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("service.bad_requests")
            return error_response("bad request", message=str(exc))

        if self._resident_enabled:
            return await self._resident_full(
                shard, k, deadline_ms, moves_only, instance, fingerprint
            )
        fp_hex = fingerprint.hex()
        self._remember_base(shard, fp_hex, instance)
        now = loop.time()
        # Event-loop fast path: a decision-memo hit needs no admission,
        # no batch, and no solve-thread hop — the decision is a pure
        # function of (fingerprint, k), so in-flight solves cannot
        # change the answer.  Plain ``get`` only: the solve thread owns
        # the memo's LRU reordering and eviction.
        if self._pool is not None and self.config.decision_cache_size:
            cached = self._decisions.get((shard, k, fp_hex))
            if cached is not None:
                self.metrics.add("service.decision_hits")
                self.metrics.add("service.ok")
                self.metrics.observe(
                    "service.latency_ms", 1e3 * (loop.time() - now)
                )
                response = dict(cached)
                response["fingerprint"] = fp_hex
                return response
        # Pin the snapshot's ring slot for the request's whole lifetime
        # so it is never rewritten under an in-flight solve.
        token = (
            self._plane.pin(fp_hex, instance)
            if self._plane is not None else None
        )
        try:
            request = PendingRequest(
                shard=shard,
                k=k,
                instance=instance,
                fingerprint=fingerprint,
                enqueued_at=now,
                deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
                future=loop.create_future(),
                shm=token,
            )
            if not self.queue.try_submit(request):
                return error_response(
                    "overloaded", retry_after_ms=self.queue.retry_after_ms()
                )
            response = await request.future
        finally:
            if token is not None and self._plane is not None:
                self._plane.unpin(token)
        latency_ms = 1e3 * (loop.time() - request.enqueued_at)
        self.metrics.observe("service.latency_ms", latency_ms)
        if response.get("ok"):
            self.metrics.add("service.ok")
            # The fingerprint names this snapshot as a future delta
            # base.  Copy before annotating: deduped requests share one
            # response object.
            response = dict(response)
            response["fingerprint"] = fp_hex
        return response

    # ------------------------------------------------------------------
    # Resident request paths (thread executor)
    # ------------------------------------------------------------------
    def _memo_hit(
        self,
        key: tuple[str, int, str, bool],
        started: float,
        loop: asyncio.AbstractEventLoop,
    ) -> dict[str, Any] | None:
        """Event-loop response-memo lookup; annotates a hit in place."""
        if not self.config.decision_cache_size:
            return None
        cached = self._responses.get(key)
        if cached is None:
            return None
        self._responses.move_to_end(key)
        self.metrics.add("service.decision_hits")
        self.metrics.add("service.ok")
        self.metrics.observe("service.latency_ms", 1e3 * (loop.time() - started))
        response = dict(cached)
        response["fingerprint"] = key[2]
        return response

    async def _await_resident(
        self, request: PendingRequest, fp_hex: str
    ) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        response = await request.future
        self.metrics.observe(
            "service.latency_ms", 1e3 * (loop.time() - request.enqueued_at)
        )
        if response.get("ok"):
            self.metrics.add("service.ok")
            response = dict(response)
            response["fingerprint"] = fp_hex
        return response

    async def _resident_delta(
        self,
        shard: str,
        k: int,
        deadline_ms: float | None,
        moves_only: bool,
        res: ResidentShard,
        delta: dict[str, Any],
    ) -> dict[str, Any]:
        """Apply a wire delta straight onto the shard's resident arrays.

        O(changed sites) on the event loop: gather the old values,
        roll the fingerprint, and ship the frame — never an Instance —
        to the solve plane.  The commit happens only after admission
        (or a memo hit), so a rejected request leaves the tip unchanged
        and the client's retry of the same delta still resolves.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        try:
            frame, fp = res.preview(delta)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("service.bad_requests")
            return error_response("bad request", message=str(exc))
        fingerprint = fp.digest()
        fp_hex = fingerprint.hex()
        # ``service.delta_applied`` keeps its pre-resident meaning — a
        # wire delta frame was decoded into the shard's next state — so
        # dashboards and tests watching it see both decode paths.
        self.metrics.add("service.delta_applied")
        self.metrics.add("service.resident_deltas")
        hit = self._memo_hit((shard, k, fp_hex, moves_only), now, loop)
        if hit is not None:
            # The decision is known but the state still advanced: commit
            # the frame and park it for the next admitted request.
            res.commit(frame, fp)
            res.defer(frame)
            return hit
        request = PendingRequest(
            shard=shard,
            k=k,
            instance=None,
            fingerprint=fingerprint,
            enqueued_at=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
            future=loop.create_future(),
            moves_only=moves_only,
        )
        if not self.queue.try_submit(request):
            return error_response(
                "overloaded", retry_after_ms=self.queue.retry_after_ms()
            )
        # No await separates the submit from the commit, so the batch
        # loop can never observe a submitted-but-uncommitted frame.
        res.commit(frame, fp)
        if res.needs_install:
            # The solve plane has never seen (or gave up tracking) this
            # shard: ship a full copy of the tip instead of frames.
            request.install = True
            request.instance = res.install_instance()
            res.pending.clear()
            res.needs_install = False
            self.metrics.add("service.resident_installs")
        else:
            request.frames = res.claim_frames(frame)
        return await self._await_resident(request, fp_hex)

    async def _resident_full(
        self,
        shard: str,
        k: int,
        deadline_ms: float | None,
        moves_only: bool,
        instance: Instance,
        fingerprint: bytes,
    ) -> dict[str, Any]:
        """Full-snapshot request on the resident path: (re)seed the tip."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        fp_hex = fingerprint.hex()
        # Keep the delta-base LRU warm for migrate/replicate exports and
        # for deltas that race a tip change.
        self._remember_base(shard, fp_hex, instance)
        res = self._residents.get(shard)
        in_sync = (
            res is not None
            and res.fp_hex == fp_hex
            and not res.needs_install
            and not res.pending
        )
        if res is None or res.fp_hex != fp_hex:
            res = ResidentShard(instance)
            self._residents[shard] = res
        hit = self._memo_hit((shard, k, fp_hex, moves_only), now, loop)
        if hit is not None:
            # needs_install stays as-is: the next miss ships the state.
            return hit
        request = PendingRequest(
            shard=shard,
            k=k,
            instance=instance,
            fingerprint=fingerprint,
            enqueued_at=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
            future=loop.create_future(),
            moves_only=moves_only,
            # A duplicate of an in-sync tip solves without reinstalling
            # (the engine will almost surely answer from its decision
            # cache); anything else reseeds the solve plane.
            install=not in_sync,
        )
        if not self.queue.try_submit(request):
            return error_response(
                "overloaded", retry_after_ms=self.queue.retry_after_ms()
            )
        if request.install:
            res.pending.clear()
            res.needs_install = False
            self.metrics.add("service.resident_installs")
        return await self._await_resident(request, fp_hex)

    def _op_health(self) -> dict[str, Any]:
        """Liveness probe for the cluster router's health loop.

        Unlike ``status`` this never hops to the solve thread or the
        worker pipes, so it answers at event-loop latency even while a
        batch is solving — a health check must not queue behind the
        work it is checking.
        """
        return ok_response(
            op="health",
            uptime_s=time.monotonic() - self._started_at,
            queue_depth=self.queue.depth,
            executor=self.config.executor,
        )

    def _op_replicate(self, message: dict[str, Any]) -> dict[str, Any]:
        """Install a snapshot into the delta-base LRU without solving.

        This is the standby half of cluster replication: the router
        replays a shard's fingerprinted delta frames here (the delta
        log *is* the replication log), so on promotion the standby
        already holds warm bases and the first failover request can go
        out as a delta.  Same decode path as ``rebalance`` — including
        the ``unknown base`` degradation to one full snapshot — minus
        admission, batching, and the solve.
        """
        self.metrics.add("service.replicate_requests")
        try:
            shard = str(message.get("shard", "default"))
            delta = message.get("delta")
            if delta is not None:
                base_hex = str(delta.get("base", ""))
                if self._resident_enabled:
                    res = self._residents.get(shard)
                    if res is not None and base_hex == res.fp_hex:
                        # Standby O(churn) path: advance the resident tip
                        # in place.  A standby's solve plane is never
                        # installed (it does not decide), so the frame
                        # only needs deferring when a solve plane is
                        # actually tracking this shard.
                        frame, fp = res.preview(delta)
                        res.commit(frame, fp)
                        if not res.needs_install:
                            res.defer(frame)
                        self.metrics.add("service.delta_applied")
                        self.metrics.add("service.resident_deltas")
                        self.metrics.add("service.replicated")
                        return ok_response(
                            op="replicate", shard=shard, fingerprint=res.fp_hex
                        )
                base = self._base_for(shard, base_hex)
                if base is None:
                    self.metrics.add("service.delta_misses")
                    return error_response("unknown base", shard=shard)
                instance, fingerprint = self._materialize_delta(
                    shard, base_hex, base, delta
                )
            else:
                instance = Instance.from_dict(message["instance"])
                fingerprint = snapshot_fingerprint(instance)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("service.bad_requests")
            return error_response("bad request", message=str(exc))
        fp_hex = fingerprint.hex()
        self._remember_base(shard, fp_hex, instance)
        if self._resident_enabled:
            res = self._residents.get(shard)
            if res is None or res.fp_hex != fp_hex:
                # Seed the resident so later replicate deltas (and the
                # first post-promotion client delta) land on the
                # O(churn) path.  ``needs_install`` stays True: the
                # solve plane only learns the state once a real decide
                # asks for it.
                self._residents[shard] = ResidentShard(instance)
        self.metrics.add("service.replicated")
        return ok_response(op="replicate", shard=shard, fingerprint=fp_hex)

    def _op_migrate(self, message: dict[str, Any]) -> dict[str, Any]:
        """Export a shard's latest snapshot for live migration.

        The router drains the shard's lane, pulls the newest delta base
        from the current owner here, ships it to the new owner as a
        ``replicate`` frame, and flips routing.  ``found: false`` (not
        an error) when this node never saw the shard — the router then
        falls back to its own copy of the snapshot.
        """
        shard = str(message.get("shard", "default"))
        res = self._residents.get(shard) if self._resident_enabled else None
        if res is not None:
            # The resident tip is by construction the newest state —
            # the delta-base LRU only sees full-snapshot requests.
            self.metrics.add("service.migrations")
            return ok_response(
                op="migrate",
                shard=shard,
                found=True,
                fingerprint=res.fp_hex,
                instance=res.export_instance().to_wire(),
            )
        bases = self._bases.get(shard)
        if not bases:
            return ok_response(op="migrate", shard=shard, found=False)
        fp_hex = next(reversed(bases))
        instance = bases[fp_hex]
        self.metrics.add("service.migrations")
        return ok_response(
            op="migrate",
            shard=shard,
            found=True,
            fingerprint=fp_hex,
            instance=instance.to_wire(),
        )

    async def _op_status(self) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        if self._pool is not None:
            # Worker pipes are only ever driven from the solve thread;
            # hop there so stats never race an in-flight batch.
            shards = await loop.run_in_executor(self._executor, self._pool_stats)
        else:
            # Thread-mode shard states are created by the solve thread
            # mid-batch; snapshot them on that same thread so status
            # never iterates the dict during an insert.
            shards = await loop.run_in_executor(
                self._executor, self._thread_shard_stats
            )
        residents = None
        if self._resident_enabled:
            residents = {
                name: {
                    "fingerprint": res.fp_hex,
                    "pending_frames": len(res.pending),
                    "needs_install": res.needs_install,
                    "num_jobs": res.num_jobs,
                }
                for name, res in self._residents.items()
            }
        return ok_response(
            uptime_s=time.monotonic() - self._started_at,
            config=self.config.as_dict(),
            queue=self.queue.stats(),
            shards=shards,
            residents=residents,
            shm=self._plane.stats() if self._plane is not None else None,
            metrics=self.metrics.as_dict(),
        )

    def _thread_shard_stats(self) -> dict[str, Any]:
        return {name: state.stats() for name, state in self.shards.items()}

    def _pool_stats(self) -> dict[str, Any]:
        assert self._pool is not None
        shards: dict[str, Any] = {}
        for worker, reply in self._pool.broadcast(
            pack_payload({"op": "stats"})
        ).items():
            stats = unpack_payload(reply)
            self._note_retained(worker, stats)
            shards.update(stats["shards"])
        return shards

    def _note_retained(self, worker: int, message: dict[str, Any]) -> None:
        """Fold a worker reply's retained map into the snapshot plane."""
        if self._plane is not None and "retained" in message:
            self._plane.note_worker_retained(worker, message["retained"])

    async def _op_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        shard = message.get("shard")
        names = [str(shard)] if shard is not None else None
        for name in (names if names is not None else list(self._bases)):
            bases = self._bases.pop(name, None)
            if bases and self._plane is not None:
                for fp_hex in bases:
                    self._plane.release_hold(fp_hex)
        for name in (names if names is not None else list(self._transitions)):
            self._transitions.pop(name, None)
        if names is None:
            self._decisions.clear()
            self._responses.clear()
            self._residents.clear()
        else:
            for key in [k for k in self._decisions if k[0] in names]:
                del self._decisions[key]
            for key in [k for k in self._responses if k[0] in names]:
                del self._responses[key]
            for name in names:
                self._residents.pop(name, None)
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        if self._pool is not None:
            reset = await loop.run_in_executor(
                self._executor, self._pool_reset, names
            )
        else:
            # Engines and solve-side residents belong to the solve
            # thread; resetting them there serializes with any batch.
            reset = await loop.run_in_executor(
                self._executor, self._thread_reset, names
            )
        self.metrics.add("service.resets")
        return ok_response(reset=sorted(set(reset)))

    def _thread_reset(self, names: list[str] | None) -> list[str]:
        reset = []
        for name in (names if names is not None else list(self.shards)):
            state = self.shards.get(name)
            if state is None:
                continue
            if state.engine is not None:
                state.engine.reset()
            state.decisions = 0
            self._solve_residents.pop(name, None)
            reset.append(name)
        return reset

    def _pool_reset(self, names: list[str] | None) -> list[str]:
        assert self._pool is not None
        payload = pack_payload({"op": "reset", "shards": names})
        reset: list[str] = []
        for worker, reply in self._pool.broadcast(payload).items():
            message = unpack_payload(reply)
            self._note_retained(worker, message)
            reset.extend(message["reset"])
        return reset

    # ------------------------------------------------------------------
    # Batch loop and solving
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.batcher.next_batch()
            try:
                await self._serve_batch(batch, loop)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # must never strand awaiting
                # handlers: fail the whole batch and keep serving.
                self.metrics.add("service.solve_errors")
                failure = error_response(
                    "internal error", message=f"{type(exc).__name__}: {exc}"
                )
                for request in batch:
                    if not request.future.done():
                        request.future.set_result(failure)

    async def _serve_batch(
        self, batch: list[PendingRequest], loop: asyncio.AbstractEventLoop
    ) -> None:
        batch = self.queue.shed_expired(batch, loop.time())
        if not batch:
            return
        lanes = self.batcher.plan(batch)
        start = loop.time()
        assert self._executor is not None
        outcomes = await loop.run_in_executor(
            self._executor, self._solve_lanes, lanes
        )
        elapsed = loop.time() - start
        self.metrics.record_span("service.solve", elapsed)
        self.queue.note_service_time(elapsed / len(batch))
        batch_info = {
            "size": len(batch),
            "unique": sum(len(lane.solves) for lane in lanes),
            "solve_ms": 1e3 * elapsed,
        }
        memo = (
            self.config.decision_cache_size if self._resident_enabled else 0
        )
        for lane, lane_outcomes in zip(lanes, outcomes):
            for solve, outcome in zip(lane.solves, lane_outcomes):
                if outcome is None:
                    # Apply-only solve: every requester already got its
                    # "deadline exceeded"; there is nothing to fan out.
                    continue
                if isinstance(outcome, dict) and outcome.get("ok"):
                    if memo:
                        # Memo before the batch annotation: a replayed
                        # response describes no batch it was part of.
                        key = (
                            lane.shard, solve.k,
                            solve.requests[0].fingerprint.hex(),
                            solve.moves_only,
                        )
                        self._responses[key] = dict(outcome)
                        while len(self._responses) > memo:
                            self._responses.popitem(last=False)
                    outcome["batch"] = batch_info
                else:
                    self.metrics.add("service.solve_errors")
                for request in solve.requests:
                    if not request.future.done():
                        request.future.set_result(outcome)

    def _solve_lanes(self, lanes: list[ShardLane]) -> list[list[dict[str, Any]]]:
        """Executor-side: fan independent shard lanes out.

        Returns, per lane, one response dict per unique solve (in lane
        order).  Runs on the dedicated solve thread; shard states are
        only ever touched from here (one batch at a time), so engines
        need no locking in either executor mode.
        """
        if self._pool is not None:
            return self._solve_lanes_process(lanes)
        workers = min(self.config.solver_workers, max(1, len(lanes)))
        if not self.config.solve_delay_s:
            # Real CPU-bound solves past the core count add no
            # throughput — they only interleave O(n)-footprint passes
            # and thrash caches/GIL (measured ~2x per-solve CPU at
            # 167k sites with 4 threads on 1 core).  A synthetic
            # service-time floor sleeps off-GIL, so that mode keeps
            # the configured fan-out.
            workers = min(workers, max(1, os.cpu_count() or 1))
        return run_sweep(
            self._solve_lane,
            lanes,
            workers=workers,
            executor="thread",
        )

    def _solve_lane(self, lane: ShardLane) -> list[dict[str, Any] | None]:
        responses: list[dict[str, Any] | None] = []
        for solve in lane.solves:
            state, rebuilt = _get_shard_state(
                self.shards, lane.shard, solve.k,
                self.config.use_engine, self.config.engine_cache_size,
            )
            if rebuilt:
                self.metrics.add("service.shard_rebuilds")
            if self._resident_enabled and (
                solve.install or solve.frames or solve.instance is None
            ):
                responses.append(self._solve_resident(state, lane.shard, solve))
            else:
                responses.append(_solve_one(
                    state, solve.instance, solve.k,
                    solve.requests[0].fingerprint,
                ))
            if self.config.solve_delay_s:
                time.sleep(self.config.solve_delay_s)
        return responses

    def _solve_resident(
        self, state: ShardState, shard: str, solve: UniqueSolve
    ) -> dict[str, Any] | None:
        """One solve on the resident solve plane (solve thread only).

        Applies the solve's frames — or reinstalls from a shipped
        snapshot — onto the shard's solve-side arrays, then decides
        with the accumulated churn hint.  Never raises; ``None`` for an
        apply-only solve (every requester already expired).
        """
        engine = state.engine
        try:
            sres = self._solve_residents.get(shard)
            if solve.install:
                sres = SolveResident(solve.instance)
                self._solve_residents[shard] = sres
                hint = None
                if engine is not None and (
                    solve.apply_only or engine.has_pending_churn
                ):
                    # An arbitrary replacement snapshot invalidates the
                    # warm tables: pending churn only describes the
                    # sites it names, and an apply-only install leaves
                    # no decide to re-anchor them.  Start cold.
                    engine.reset()
            else:
                if sres is None:
                    return error_response(
                        "solve failed", shard=shard,
                        message="resident solve without installed state",
                    )
                hint = sres.apply(solve.frames)
            if solve.apply_only:
                if hint is not None and engine is not None:
                    engine.note_churn(*hint)
                return None
            instance = sres.view()
            result = engine.rebalance(
                instance,
                fingerprint=solve.requests[0].fingerprint,
                changed=hint,
            )
            state.decisions += 1
            if solve.moves_only:
                return _moves_response(state, result, instance)
            return _result_response(state, result)
        except Exception as exc:
            # The engine may be mid-patch: drop its state so the next
            # decide rebuilds from the resident arrays.
            if engine is not None:
                engine.reset()
            return error_response(
                "solve failed", message=f"{type(exc).__name__}: {exc}"
            )

    def _worker_for(self, shard: str) -> int:
        """Stable shard → worker affinity (``hash()`` is per-process
        seeded, so crc32 it is)."""
        return crc32(shard.encode("utf-8")) % self.config.process_workers

    def _wire_solve(self, solve: UniqueSolve, *, inline: bool) -> dict[str, Any]:
        """One solve's wire form: an O(1) shm slot reference when the
        snapshot plane holds the snapshot, inline arrays otherwise."""
        entry: dict[str, Any] = {
            "k": solve.k,
            "fp": solve.requests[0].fingerprint.hex(),
        }
        # A token pinned before a ring grow references a retired
        # segment; its (slot, generation) could collide with fresh
        # writes in the new ring, so stale-epoch tokens go inline.
        if (
            not inline
            and solve.shm is not None
            and self._plane is not None
            and solve.shm[2] == self._plane.epoch
        ):
            slot, generation, _epoch = solve.shm
            entry["slot"] = slot
            entry["gen"] = generation
            entry["n"] = solve.instance.num_jobs
            entry["m"] = solve.instance.num_processors
        else:
            entry["instance"] = solve.instance.to_wire()
        return entry

    def _solve_lanes_process(
        self, lanes: list[ShardLane]
    ) -> list[list[dict[str, Any]]]:
        """Route lanes to their affine workers over the binary codec.

        Solves whose ``(shard, k, fingerprint)`` is in the server-side
        decision memo are answered here; only the misses cross the
        worker pipe.  Replies scatter back into the original solve
        positions, so downstream bookkeeping never sees the split.
        """
        plane = self._plane
        if plane is not None and plane.pending_attach:
            # The ring grew since the last batch: point every worker at
            # the new segment before wiring any slot references to it.
            epoch = plane.epoch
            ring = plane.ring
            assert self._pool is not None
            for worker, reply in self._pool.broadcast(pack_payload({
                "op": "attach",
                "name": ring.name,
                "slots": ring.slots,
                "slot_bytes": ring.slot_bytes,
            })).items():
                self._note_retained(worker, unpack_payload(reply))
            plane.note_attached(epoch)
        memo = self.config.decision_cache_size
        results: list[list[dict[str, Any]]] = [
            [None] * len(lane.solves) for lane in lanes  # type: ignore[list-item]
        ]
        pending: dict[int, list[int]] = {}
        for i, lane in enumerate(lanes):
            for j, solve in enumerate(lane.solves):
                key = (lane.shard, solve.k, solve.requests[0].fingerprint.hex())
                cached = self._decisions.get(key) if memo else None
                if cached is not None:
                    self._decisions.move_to_end(key)
                    self.metrics.add("service.decision_hits")
                    results[i][j] = dict(cached)
                else:
                    pending.setdefault(i, []).append(j)
        if not pending:
            return results
        groups: dict[int, list[int]] = {}
        for i in pending:
            groups.setdefault(self._worker_for(lanes[i].shard), []).append(i)
        assignments: dict[int, bytes] = {}
        for worker, lane_indices in groups.items():
            payload = pack_payload({
                "op": "solve",
                "lanes": [
                    {
                        "shard": lanes[i].shard,
                        "solves": [
                            self._wire_solve(lanes[i].solves[j], inline=False)
                            for j in pending[i]
                        ],
                    }
                    for i in lane_indices
                ],
            })
            self.metrics.add("service.ipc_bytes_out", len(payload))
            assignments[worker] = payload
        assert self._pool is not None
        replies = self._pool.request(assignments)
        stale: dict[int, list[tuple[int, int]]] = {}
        for worker, lane_indices in groups.items():
            reply = replies[worker]
            self.metrics.add("service.ipc_bytes_in", len(reply))
            message = unpack_payload(reply)
            self._note_retained(worker, message)
            for i, lane_out in zip(lane_indices, message["lanes"]):
                for j, outcome in zip(pending[i], lane_out):
                    results[i][j] = outcome
                    if (
                        isinstance(outcome, dict)
                        and outcome.get("error") == "stale segment"
                    ):
                        stale.setdefault(worker, []).append((i, j))
        if stale:
            self._retry_stale(lanes, results, stale)
        if memo:
            for i, where in pending.items():
                for j in where:
                    outcome = results[i][j]
                    if isinstance(outcome, dict) and outcome.get("ok"):
                        solve = lanes[i].solves[j]
                        key = (
                            lanes[i].shard, solve.k,
                            solve.requests[0].fingerprint.hex(),
                        )
                        self._decisions[key] = dict(outcome)
            while len(self._decisions) > memo:
                self._decisions.popitem(last=False)
        return results

    def _retry_stale(
        self,
        lanes: list[ShardLane],
        results: list[list[dict[str, Any]]],
        stale: dict[int, list[tuple[int, int]]],
    ) -> None:
        """Re-send stale-segment solves with inline arrays.

        Request pins make slot recycling under an in-flight solve
        unreachable, so this path guards the exceptional cases — a
        worker without a ring attachment or a ring restart — with the
        PR 5 codec behavior instead of a failed request.
        """
        assignments: dict[int, bytes] = {}
        for worker, where in stale.items():
            payload = pack_payload({
                "op": "solve",
                "lanes": [
                    {
                        "shard": lanes[i].shard,
                        "solves": [
                            self._wire_solve(lanes[i].solves[j], inline=True)
                        ],
                    }
                    for i, j in where
                ],
            })
            self.metrics.add("service.shm_stale", len(where))
            self.metrics.add("service.ipc_bytes_out", len(payload))
            assignments[worker] = payload
        assert self._pool is not None
        replies = self._pool.request(assignments)
        for worker, where in stale.items():
            reply = replies[worker]
            self.metrics.add("service.ipc_bytes_in", len(reply))
            message = unpack_payload(reply)
            self._note_retained(worker, message)
            for (i, j), lane_out in zip(where, message["lanes"]):
                results[i][j] = lane_out[0]


# ----------------------------------------------------------------------
# Background-thread embedding (tests, benchmarks, loadgen --spawn)
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a private event loop in a daemon thread."""

    def __init__(
        self,
        server: RebalanceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self.host = server.config.host
        self.port = server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_background(config: ServerConfig | None = None) -> ServerHandle:
    """Start a :class:`RebalanceServer` on a daemon thread.

    Blocks until the listener is bound (so ``handle.port`` is valid the
    moment this returns) and re-raises any startup failure in the
    caller.  Use as a context manager for scoped teardown.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            server = RebalanceServer(config)
            try:
                await server.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=60.0):  # pragma: no cover
        raise RuntimeError("server failed to start within 60s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
