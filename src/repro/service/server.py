"""The asyncio rebalancing server.

``queue → batcher → engine pool``: connections are parsed on the event
loop, admitted into the bounded :class:`~repro.service.admission.AdmissionQueue`,
drained by the :class:`~repro.service.batching.MicroBatcher`, and solved
on worker threads — one warm
:class:`~repro.core.engine.RebalanceEngine` per named *shard*, so every
shard's epoch stream hits the threshold-table and fingerprint caches
exactly as an in-process engine would.  The event loop never blocks on
a solve: each batch is one ``run_in_executor`` hop whose inside fans
independent shard lanes out via :func:`repro.parallel.run_sweep`
(thread executor — the engines are stateful and stay in-process).

Decisions are byte-identical to in-process
:func:`repro.core.partition.m_partition_rebalance` calls on the same
snapshots (the engine's transparent-acceleration contract, plus the
batcher's dedupe only collapsing byte-identical snapshots); the
end-to-end websim differential test pins this.

:class:`ServerConfig.naive` is the control: batch size 1, no dedupe,
no warm engine — the one-request-per-solve server benchmark E14
measures against.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any

from .. import telemetry
from ..core.engine import RebalanceEngine, snapshot_fingerprint
from ..core.instance import Instance
from ..core.partition import m_partition_rebalance
from ..parallel import run_sweep
from .admission import AdmissionQueue, PendingRequest
from .batching import BatchConfig, MicroBatcher, ShardLane
from .protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

__all__ = [
    "RebalanceServer",
    "ServerConfig",
    "ServerHandle",
    "ShardState",
    "start_background",
]


@dataclass(frozen=True)
class ServerConfig:
    """Everything the service's behavior depends on."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read it back from Server.port
    max_batch: int = 16
    max_wait_ms: float = 2.0
    dedupe: bool = True
    use_engine: bool = True
    max_queue: int = 128
    solver_workers: int = 4
    engine_cache_size: int = 64

    @classmethod
    def naive(cls, **overrides: Any) -> "ServerConfig":
        """The one-request-per-solve control server: no batching, no
        dedupe, no warm engine — every request is a from-scratch
        ``m_partition_rebalance`` call."""
        return replace(
            cls(max_batch=1, dedupe=False, use_engine=False), **overrides
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "dedupe": self.dedupe,
            "use_engine": self.use_engine,
            "max_queue": self.max_queue,
            "solver_workers": self.solver_workers,
            "engine_cache_size": self.engine_cache_size,
        }


@dataclass
class ShardState:
    """One named shard: a move budget and (optionally) a warm engine."""

    name: str
    k: int
    engine: RebalanceEngine | None
    decisions: int = 0

    def stats(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "decisions": self.decisions,
            "engine": self.engine.stats.as_dict() if self.engine else None,
        }


class RebalanceServer:
    """Length-prefixed-JSON TCP server around a pool of shard engines."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = telemetry.Collector()
        self.shards: dict[str, ShardState] = {}
        self.queue = AdmissionQueue(self.config.max_queue, self.metrics)
        self.batcher = MicroBatcher(
            self.queue,
            BatchConfig(
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_wait_ms,
                dedupe=self.config.dedupe,
            ),
            self.metrics,
        )
        self._server: asyncio.AbstractServer | None = None
        self._batch_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, start accepting connections, and start the batch loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()
        self._batch_task = asyncio.create_task(self._batch_loop())

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (same-loop callers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop`, then shut down cleanly."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, and release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        # Fail anything still queued so no handler awaits forever.
        for request in self.queue.drain_nowait():
            if not request.future.done():
                request.future.set_result(error_response("shutting down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.add("service.connections")
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    self.metrics.add("service.protocol_errors")
                    writer.write(encode_frame(error_response(
                        "protocol error", message=str(exc))))
                    await writer.drain()
                    break
                if message is None:
                    break
                response = await self._dispatch(message)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "rebalance":
            return await self._op_rebalance(message)
        if op == "status":
            return self._op_status()
        if op == "reset":
            return self._op_reset(message)
        if op == "ping":
            return ok_response(op="ping")
        self.metrics.add("service.protocol_errors")
        return error_response("unknown op", op=op)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_rebalance(self, message: dict[str, Any]) -> dict[str, Any]:
        self.metrics.add("service.requests")
        loop = asyncio.get_running_loop()
        try:
            shard = str(message.get("shard", "default"))
            k = int(message.get("k", 2))
            if k < 0:
                raise ValueError("k must be non-negative")
            instance = Instance.from_dict(message["instance"])
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("service.bad_requests")
            return error_response("bad request", message=str(exc))

        deadline_ms = message.get("deadline_ms")
        now = loop.time()
        request = PendingRequest(
            shard=shard,
            k=k,
            instance=instance,
            fingerprint=snapshot_fingerprint(instance),
            enqueued_at=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
            future=loop.create_future(),
        )
        if not self.queue.try_submit(request):
            return error_response(
                "overloaded", retry_after_ms=self.queue.retry_after_ms()
            )
        response = await request.future
        latency_ms = 1e3 * (loop.time() - request.enqueued_at)
        self.metrics.observe("service.latency_ms", latency_ms)
        if response.get("ok"):
            self.metrics.add("service.ok")
        return response

    def _op_status(self) -> dict[str, Any]:
        return ok_response(
            uptime_s=time.monotonic() - self._started_at,
            config=self.config.as_dict(),
            queue=self.queue.stats(),
            shards={name: s.stats() for name, s in self.shards.items()},
            metrics=self.metrics.as_dict(),
        )

    def _op_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        shard = message.get("shard")
        names = [shard] if shard is not None else list(self.shards)
        reset = []
        for name in names:
            state = self.shards.get(name)
            if state is None:
                continue
            if state.engine is not None:
                state.engine.reset()
            state.decisions = 0
            reset.append(name)
        self.metrics.add("service.resets")
        return ok_response(reset=sorted(reset))

    # ------------------------------------------------------------------
    # Batch loop and solving
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.batcher.next_batch()
            try:
                await self._serve_batch(batch, loop)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # must never strand awaiting
                # handlers: fail the whole batch and keep serving.
                self.metrics.add("service.solve_errors")
                failure = error_response(
                    "internal error", message=f"{type(exc).__name__}: {exc}"
                )
                for request in batch:
                    if not request.future.done():
                        request.future.set_result(failure)

    async def _serve_batch(
        self, batch: list[PendingRequest], loop: asyncio.AbstractEventLoop
    ) -> None:
        batch = self.queue.shed_expired(batch, loop.time())
        if not batch:
            return
        lanes = self.batcher.plan(batch)
        start = loop.time()
        assert self._executor is not None
        outcomes = await loop.run_in_executor(
            self._executor, self._solve_lanes, lanes
        )
        elapsed = loop.time() - start
        self.metrics.record_span("service.solve", elapsed)
        self.queue.note_service_time(elapsed / len(batch))
        batch_info = {
            "size": len(batch),
            "unique": sum(len(lane.solves) for lane in lanes),
            "solve_ms": 1e3 * elapsed,
        }
        for lane, lane_outcomes in zip(lanes, outcomes):
            for solve, outcome in zip(lane.solves, lane_outcomes):
                if isinstance(outcome, dict) and outcome.get("ok"):
                    outcome["batch"] = batch_info
                for request in solve.requests:
                    if not request.future.done():
                        request.future.set_result(outcome)

    def _shard_state(self, name: str, k: int) -> ShardState:
        """The shard's state, (re)building its engine on a ``k`` change.

        An engine is pinned to one move budget; a request that switches
        a shard's ``k`` retires the warm engine and starts cold (counted
        in ``service.shard_rebuilds`` — keep per-``k`` streams on
        separate shards to avoid the churn).
        """
        state = self.shards.get(name)
        if state is None:
            state = ShardState(
                name=name,
                k=k,
                engine=RebalanceEngine(
                    k=k, cache_size=self.config.engine_cache_size
                ) if self.config.use_engine else None,
            )
            self.shards[name] = state
        elif state.k != k:
            self.metrics.add("service.shard_rebuilds")
            state.k = k
            if self.config.use_engine:
                state.engine = RebalanceEngine(
                    k=k, cache_size=self.config.engine_cache_size
                )
        return state

    def _solve_lanes(self, lanes: list[ShardLane]) -> list[list[dict[str, Any]]]:
        """Executor-side: fan independent shard lanes out over threads.

        Returns, per lane, one response dict per unique solve (in lane
        order).  Runs on the dedicated solve thread; shard states are
        only ever touched from here (one batch at a time), so engines
        need no locking.
        """
        return run_sweep(
            self._solve_lane,
            lanes,
            workers=min(self.config.solver_workers, max(1, len(lanes))),
            executor="thread",
        )

    def _solve_lane(self, lane: ShardLane) -> list[dict[str, Any]]:
        responses = []
        for solve in lane.solves:
            state = self._shard_state(lane.shard, solve.k)
            try:
                if state.engine is not None:
                    result = state.engine.rebalance(solve.instance)
                else:
                    result = m_partition_rebalance(solve.instance, solve.k)
                state.decisions += 1
                responses.append(ok_response(
                    mapping=[int(p) for p in result.assignment.mapping],
                    guessed_opt=result.guessed_opt,
                    planned_moves=result.planned_moves,
                    algorithm=result.algorithm,
                    shard=lane.shard,
                ))
            except Exception as exc:  # defensive: a failed solve must
                # never take the batch loop down with it.
                self.metrics.add("service.solve_errors")
                responses.append(error_response(
                    "solve failed", message=f"{type(exc).__name__}: {exc}"))
        return responses


# ----------------------------------------------------------------------
# Background-thread embedding (tests, benchmarks, loadgen --spawn)
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a private event loop in a daemon thread."""

    def __init__(
        self,
        server: RebalanceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self.host = server.config.host
        self.port = server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_background(config: ServerConfig | None = None) -> ServerHandle:
    """Start a :class:`RebalanceServer` on a daemon thread.

    Blocks until the listener is bound (so ``handle.port`` is valid the
    moment this returns) and re-raises any startup failure in the
    caller.  Use as a context manager for scoped teardown.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            server = RebalanceServer(config)
            try:
                await server.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover
        raise RuntimeError("server failed to start within 30s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
