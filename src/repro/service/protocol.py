"""Wire protocol for the rebalancing service.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Length-prefixing (rather
than newline-delimiting) keeps the framing payload-agnostic — instance
snapshots embed floats whose JSON encoding is free to contain anything
— and lets both sides pre-allocate the read.

Every request is one JSON object with an ``op`` field; every response
is one JSON object with an ``ok`` field.  The three operations are:

``rebalance``
    ``{"op": "rebalance", "shard": str, "k": int, "instance":
    Instance.to_dict(), "deadline_ms": float?}`` →
    ``{"ok": true, "mapping": [int], "guessed_opt": float,
    "planned_moves": int, "algorithm": str, "batch": {...}}`` or an
    error (``overloaded`` carries ``retry_after_ms``).
``status``
    ``{"op": "status"}`` → uptime, config, queue depth, per-shard
    engine statistics, and the server's telemetry export (counters +
    latency histograms in :meth:`repro.telemetry.Collector.as_dict`
    form).
``reset``
    ``{"op": "reset", "shard": str?}`` → drops the named shard's (or
    every shard's) warm engine state.

``ping`` additionally answers ``{"ok": true}`` so clients and process
supervisors can probe liveness without touching solver state.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "error_response",
    "ok_response",
    "read_frame",
    "read_frame_sync",
    "write_frame_sync",
]

# Generous ceiling: a million-site snapshot is ~25 MB of JSON.  Anything
# larger is a corrupt or hostile frame, not a workload.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame (bad length, bad JSON, or a non-object body)."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire form."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the maximum")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length} exceeds the maximum")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking counterpart of :func:`read_frame` for the sync client."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length} exceeds the maximum")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


def write_frame_sync(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Blocking send of one message."""
    sock.sendall(encode_frame(payload))


def ok_response(**fields: Any) -> dict[str, Any]:
    """A success response body."""
    return {"ok": True, **fields}


def error_response(error: str, **fields: Any) -> dict[str, Any]:
    """A failure response body; ``error`` is a stable machine code."""
    return {"ok": False, "error": error, **fields}
