"""Wire protocol for the rebalancing service.

Two negotiated frame formats share every listening port:

**v1 — length-prefixed JSON** (the original format, kept as the
fallback for old clients): a 4-byte big-endian unsigned length followed
by that many bytes of one UTF-8 JSON object.  Length-prefixing (rather
than newline-delimiting) keeps the framing payload-agnostic and lets
both sides pre-allocate the read.

**v2 — binary frames**: an 8-byte header (2-byte magic ``RB``, version
byte, flags byte, 4-byte little-endian body length) followed by a body
that carries the message's numeric arrays as raw little-endian buffers
instead of JSON lists::

    offset 0   2 bytes   magic b"RB"
    offset 2   1 byte    version (2)
    offset 3   1 byte    flags (reserved, 0)
    offset 4   4 bytes   body length, little-endian uint32
    offset 8   ...       body

    body:
    offset 0   4 bytes   meta length J, little-endian uint32
    offset 4   J bytes   meta: UTF-8 JSON, arrays replaced by
                         {"__nd__": [dtype, count, offset]}
    align(8)   ...       raw array section: the arrays' bytes,
                         each 8-byte aligned, little-endian

The meta JSON is the message with every :class:`numpy.ndarray` value
replaced by a descriptor; the decoder rebuilds each array zero-copy
with :func:`numpy.frombuffer` over the received body.  Supported array
dtypes are ``<f8`` and ``<i8`` (all the wire ever carries: sizes,
costs, initial assignments, mappings, changed-site indices).

Negotiation is per-frame and implicit: the two formats are
distinguishable from the first byte (a v1 length never exceeds
:data:`MAX_FRAME_BYTES` = 64 MiB, so its first byte is at most 0x04,
while the v2 magic starts with 0x52), both readers accept both, and the
server answers every request in the format the request arrived in.  An
old client therefore sees pure v1 traffic; a new client opts into v2 by
simply sending it.

Every request is one message object with an ``op`` field; every
response has an ``ok`` field.  The operations are:

``rebalance``
    ``{"op": "rebalance", "shard": str, "k": int, "instance":
    Instance.to_dict()-shaped, "deadline_ms": float?}`` →
    ``{"ok": true, "mapping": [int], "guessed_opt": float,
    "planned_moves": int, "algorithm": str, "fingerprint": hex,
    "batch": {...}}`` or an error (``overloaded`` carries
    ``retry_after_ms``).  Instead of ``instance`` a request may carry a
    **delta frame**: ``{"delta": {"base": hex, "idx": [int],
    "sizes": [float], "costs": [float], "initial": [int]}}`` — only
    the changed sites, applied server-side to the base snapshot named
    by the fingerprint of a previous response.  A server that no longer
    holds the base answers ``unknown base`` and the client falls back
    to a full snapshot.
``status``
    ``{"op": "status"}`` → uptime, config, queue depth, per-shard
    engine statistics, and the server's telemetry export.
``reset``
    ``{"op": "reset", "shard": str?}`` → drops the named shard's (or
    every shard's) warm engine state and delta bases.

``ping`` additionally answers ``{"ok": true}`` so clients and process
supervisors can probe liveness without touching solver state.

Node-to-node operations (spoken between the cluster router of
:mod:`repro.service.cluster` and its backend ``serve`` nodes — same
codec, same port, no separate control plane):

``health``
    ``{"op": "health"}`` → ``{"ok": true, "uptime_s": float,
    "queue_depth": int, "executor": str}``.  Answered on the event
    loop without touching the solve thread, so the router's health
    loop measures liveness rather than solver backlog.
``replicate``
    ``{"op": "replicate", "shard": str, "instance": ...}`` or the same
    ``delta`` body as ``rebalance`` → ``{"ok": true, "shard": str,
    "fingerprint": hex}``.  Installs the snapshot into the node's
    delta-base LRU without solving; the router replays each shard's
    fingerprinted delta stream at a standby this way (the delta log
    *is* the replication log), and ``unknown base`` degrades to one
    full snapshot exactly as on the primary path.
``migrate``
    ``{"op": "migrate", "shard": str}`` → ``{"ok": true, "found":
    bool, "fingerprint": hex?, "instance": ...?}``.  Exports the
    shard's newest delta base so the router can ship it to a new
    owner during live migration.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "ProtocolError",
    "RebalanceEncoder",
    "decode_body",
    "encode_frame",
    "encode_frame_into",
    "error_response",
    "frame_header",
    "ok_response",
    "pack_payload",
    "peek_meta",
    "read_frame",
    "read_frame_raw",
    "read_frame_sync",
    "read_frame_sync_versioned",
    "read_frame_versioned",
    "unpack_payload",
    "write_frame_sync",
]

# Generous ceiling: a million-site snapshot is ~25 MB of JSON.  Anything
# larger is a corrupt or hostile frame, not a workload.
MAX_FRAME_BYTES = 64 * 1024 * 1024

PROTOCOL_V1 = 1
PROTOCOL_V2 = 2

# v1 header: big-endian length.  Its first byte is <= 0x04 for any
# length within MAX_FRAME_BYTES, so it can never collide with _MAGIC.
_HEADER = struct.Struct(">I")
# v2 header after the 2-byte magic: version, flags, little-endian length.
_MAGIC = b"RB"
_V2_TAIL = struct.Struct("<BBI")
_V2_HEADER_SIZE = len(_MAGIC) + _V2_TAIL.size
_META_LEN = struct.Struct("<I")

# Wire dtype codes -> numpy dtypes (explicitly little-endian so frames
# are host-order independent; on LE hosts the casts below are no-ops).
_WIRE_DTYPES = {"<f8": np.dtype("<f8"), "<i8": np.dtype("<i8")}
_ND_KEY = "__nd__"


class ProtocolError(Exception):
    """A malformed frame (bad length, bad JSON, or a non-object body)."""


def ok_response(**fields: Any) -> dict[str, Any]:
    """A success response body."""
    return {"ok": True, **fields}


def error_response(error: str, **fields: Any) -> dict[str, Any]:
    """A failure response body; ``error`` is a stable machine code."""
    return {"ok": False, "error": error, **fields}


# ----------------------------------------------------------------------
# v2 body codec: JSON meta + raw little-endian array blobs
# ----------------------------------------------------------------------
def _align8(n: int) -> int:
    return (n + 7) & ~7


def _wire_code(arr: np.ndarray) -> str:
    kind = arr.dtype.kind
    if kind == "f":
        return "<f8"
    if kind in "iu":
        return "<i8"
    raise ProtocolError(f"unsupported array dtype {arr.dtype} on the wire")


def _strip_arrays(obj: Any, blobs: list[tuple[str, bytes]]) -> Any:
    """Replace ndarray values with descriptors, collecting their bytes.

    Offsets are filled in by :func:`pack_payload` once all blobs are
    known (each is 8-byte aligned within the raw array section).
    """
    if isinstance(obj, np.ndarray):
        if obj.ndim != 1:
            raise ProtocolError(
                f"only one-dimensional arrays go on the wire, got shape {obj.shape}"
            )
        code = _wire_code(obj)
        data = np.ascontiguousarray(obj).astype(_WIRE_DTYPES[code], copy=False)
        blobs.append((code, data.tobytes()))
        # Offset placeholder (index 2) is patched by pack_payload.
        return {_ND_KEY: [code, int(obj.shape[0]), len(blobs) - 1]}
    if isinstance(obj, dict):
        return {str(k): _strip_arrays(v, blobs) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_strip_arrays(v, blobs) for v in obj]
    return obj


def _patch_offsets(obj: Any, offsets: list[int]) -> None:
    if isinstance(obj, dict):
        nd = obj.get(_ND_KEY)
        if isinstance(nd, list):
            nd[2] = offsets[nd[2]]
            return
        for value in obj.values():
            _patch_offsets(value, offsets)
    elif isinstance(obj, list):
        for value in obj:
            _patch_offsets(value, offsets)


def _section_layout(blobs: list[tuple[str, bytes]]) -> tuple[list[int], int]:
    """Lay the raw array section out: each blob 8-byte aligned, offsets
    relative to the start of the section.  Returns (offsets, size)."""
    offsets: list[int] = []
    cursor = 0
    for _, data in blobs:
        cursor = _align8(cursor)
        offsets.append(cursor)
        cursor += len(data)
    return offsets, cursor


def _write_body_into(
    out: bytearray,
    at: int,
    meta: bytes,
    blobs: list[tuple[str, bytes]],
    offsets: list[int],
    section_size: int,
) -> int:
    """Write one v2 body (meta + aligned blobs) into ``out`` at ``at``.

    ``out`` is grown (never shrunk) so callers can reuse one buffer
    across frames without reallocating; alignment gaps are zeroed so a
    reused buffer stays byte-identical to a fresh encode of the same
    payload.  Returns the end offset.
    """
    section_start = _align8(_META_LEN.size + len(meta))
    end = at + section_start + section_size
    if len(out) < end:
        out.extend(bytes(end - len(out)))
    _META_LEN.pack_into(out, at, len(meta))
    meta_start = at + _META_LEN.size
    out[meta_start:meta_start + len(meta)] = meta
    out[meta_start + len(meta):at + section_start] = bytes(
        section_start - _META_LEN.size - len(meta)
    )
    prev_end = 0
    for (_, data), offset in zip(blobs, offsets):
        start = at + section_start + offset
        out[at + section_start + prev_end:start] = bytes(offset - prev_end)
        out[start:start + len(data)] = data
        prev_end = offset + len(data)
    return end


def _pack_payload_into(payload: dict[str, Any], out: bytearray, at: int) -> int:
    """:func:`pack_payload`, but writing into ``out`` at offset ``at``;
    returns the end offset."""
    blobs: list[tuple[str, bytes]] = []
    meta_obj = _strip_arrays(payload, blobs)
    offsets, section_size = _section_layout(blobs)
    _patch_offsets(meta_obj, offsets)
    meta = json.dumps(meta_obj, separators=(",", ":")).encode("utf-8")
    return _write_body_into(out, at, meta, blobs, offsets, section_size)


def pack_payload(payload: dict[str, Any]) -> bytes:
    """Serialize one message to the v2 binary body (no frame header).

    Also the marshaling format of the service's multi-process shard
    executor: worker payloads cross the pipe in exactly the bytes a v2
    frame body would carry.
    """
    out = bytearray()
    _pack_payload_into(payload, out, 0)
    return bytes(out)


def _revive_arrays(obj: Any, section: memoryview) -> Any:
    if isinstance(obj, dict):
        nd = obj.get(_ND_KEY)
        if isinstance(nd, list):
            try:
                code, count, offset = nd
                dtype = _WIRE_DTYPES[str(code)]
                count = int(count)
                offset = int(offset)
                if count < 0 or offset < 0:
                    raise ValueError("negative array bounds")
                end = offset + count * dtype.itemsize
                if end > len(section):
                    raise ValueError("array extends past the frame")
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"bad array descriptor {nd!r}: {exc}") from exc
            return np.frombuffer(section, dtype=dtype, count=count, offset=offset)
        return {k: _revive_arrays(v, section) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_revive_arrays(v, section) for v in obj]
    return obj


def _parse_meta(view: memoryview) -> tuple[dict[str, Any], int]:
    """Parse a v2 body's meta JSON; return ``(message, section_start)``.

    Array values stay as ``{"__nd__": [dtype, count, offset]}``
    descriptors — the raw array section is not touched.
    """
    if len(view) < _META_LEN.size:
        raise ProtocolError("binary body too short for its meta length")
    (meta_len,) = _META_LEN.unpack_from(view, 0)
    section_start = _align8(_META_LEN.size + meta_len)
    if section_start > len(view):
        raise ProtocolError("binary body shorter than its declared meta")
    meta = view[_META_LEN.size:_META_LEN.size + meta_len]
    try:
        message = json.loads(bytes(meta).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame meta: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message, section_start


def peek_meta(body: bytes | bytearray | memoryview) -> dict[str, Any]:
    """Parse only the meta JSON of a v2 body — no array revival.

    O(meta), independent of the snapshot size: this is how the
    data-plane router routes a full-snapshot ``rebalance`` by shard/k
    and relays the raw bytes without ever materializing the instance.
    Array values appear as their ``{"__nd__": ...}`` descriptors.
    """
    return _parse_meta(memoryview(body))[0]


def unpack_payload(body: bytes | bytearray | memoryview) -> dict[str, Any]:
    """Inverse of :func:`pack_payload`.

    Arrays are :func:`numpy.frombuffer` views over ``body`` — zero
    copies; they stay valid as long as ``body`` is alive and are
    read-only when ``body`` is immutable ``bytes``.
    """
    view = memoryview(body)
    message, section_start = _parse_meta(view)
    return _revive_arrays(message, view[section_start:])


# ----------------------------------------------------------------------
# Frame encode
# ----------------------------------------------------------------------
def _json_default(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_frame(payload: dict[str, Any], version: int = PROTOCOL_V1) -> bytes:
    """Serialize one message to its on-wire form.

    ``version=1`` emits the JSON format (ndarray values are listified);
    ``version=2`` emits the binary format with raw array buffers.
    """
    if version == PROTOCOL_V1:
        body = json.dumps(
            payload, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(body)} bytes exceeds the maximum")
        return _HEADER.pack(len(body)) + body
    if version == PROTOCOL_V2:
        body = pack_payload(payload)
        if len(body) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(body)} bytes exceeds the maximum")
        return _MAGIC + _V2_TAIL.pack(PROTOCOL_V2, 0, len(body)) + body
    raise ProtocolError(f"unknown protocol version {version}")


def frame_header(body_len: int, version: int = PROTOCOL_V2) -> bytes:
    """The frame header for a ``body_len``-byte body.

    The relay path uses this to forward an already-encoded body
    verbatim: header + raw bytes, no decode/re-encode round trip.
    """
    _check_length(body_len)
    if version == PROTOCOL_V1:
        return _HEADER.pack(body_len)
    if version == PROTOCOL_V2:
        return _MAGIC + _V2_TAIL.pack(PROTOCOL_V2, 0, body_len)
    raise ProtocolError(f"unknown protocol version {version}")


def decode_body(body: bytes | bytearray | memoryview, version: int
                ) -> dict[str, Any]:
    """Decode a raw frame body read by :func:`read_frame_raw`."""
    if version == PROTOCOL_V1:
        return _decode_json_body(bytes(body))
    if version == PROTOCOL_V2:
        return unpack_payload(body)
    raise ProtocolError(f"unknown protocol version {version}")


def encode_frame_into(
    payload: dict[str, Any], buf: bytearray, version: int = PROTOCOL_V1
) -> memoryview:
    """:func:`encode_frame` into a reusable buffer.

    ``buf`` is grown as needed and never shrunk, so a connection can
    keep one scratch buffer and skip the per-frame allocation and the
    header+body concatenation copy.  Returns a memoryview of the
    encoded frame — valid until the next call with the same buffer
    (asyncio transports copy on ``write``, so handing the view straight
    to a transport is safe).
    """
    if version == PROTOCOL_V1:
        body = json.dumps(
            payload, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(body)} bytes exceeds the maximum")
        end = _HEADER.size + len(body)
        if len(buf) < end:
            buf.extend(bytes(end - len(buf)))
        _HEADER.pack_into(buf, 0, len(body))
        buf[_HEADER.size:end] = body
        return memoryview(buf)[:end]
    if version == PROTOCOL_V2:
        end = _pack_payload_into(payload, buf, _V2_HEADER_SIZE)
        body_len = end - _V2_HEADER_SIZE
        if body_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {body_len} bytes exceeds the maximum")
        buf[:len(_MAGIC)] = _MAGIC
        _V2_TAIL.pack_into(buf, len(_MAGIC), PROTOCOL_V2, 0, body_len)
        return memoryview(buf)[:end]
    raise ProtocolError(f"unknown protocol version {version}")


class RebalanceEncoder:
    """Reusable v2 encoder for a fixed rebalance meta + per-epoch delta.

    A steady-state churn stream sends the same static meta ``{"op":
    "rebalance", "shard": ..., "k": ..., ...}`` every epoch; only the
    ``delta`` object (and its arrays) changes.  Re-serializing the
    static keys through ``json.dumps`` every epoch is pure client-side
    CPU, so this caches the static JSON fragment once and splices the
    per-epoch delta fragment into a reusable frame buffer.

    ``encode(delta)`` is byte-identical to ``encode_frame({**static,
    "delta": delta}, version=PROTOCOL_V2)`` — the static fragment
    serializes first (dict insertion order), the delta's arrays are the
    only blobs, and alignment gaps are zeroed.
    """

    def __init__(self, static: dict[str, Any]) -> None:
        if not static:
            raise ValueError("static meta must be non-empty")
        if "delta" in static:
            raise ValueError("'delta' is the per-epoch field, not static")
        blobs: list[tuple[str, bytes]] = []
        static_obj = _strip_arrays(static, blobs)
        if blobs:
            raise ValueError("static meta must not carry arrays")
        prefix = json.dumps(static_obj, separators=(",", ":")).encode("utf-8")
        self._prefix = prefix[:-1] + b',"delta":'
        self._buf = bytearray()

    def encode(self, delta: dict[str, Any]) -> memoryview:
        """One frame; the returned view is valid until the next call."""
        blobs: list[tuple[str, bytes]] = []
        delta_obj = _strip_arrays(delta, blobs)
        offsets, section_size = _section_layout(blobs)
        _patch_offsets(delta_obj, offsets)
        meta = b"".join((
            self._prefix,
            json.dumps(delta_obj, separators=(",", ":")).encode("utf-8"),
            b"}",
        ))
        end = _write_body_into(
            self._buf, _V2_HEADER_SIZE, meta, blobs, offsets, section_size
        )
        body_len = end - _V2_HEADER_SIZE
        if body_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {body_len} bytes exceeds the maximum")
        self._buf[:len(_MAGIC)] = _MAGIC
        _V2_TAIL.pack_into(self._buf, len(_MAGIC), PROTOCOL_V2, 0, body_len)
        return memoryview(self._buf)[:end]


def _decode_json_body(body: bytes | bytearray) -> dict[str, Any]:
    try:
        message = json.loads(bytes(body).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length} exceeds the maximum")
    return length


def _parse_v2_tail(head: bytes | bytearray) -> int:
    """Validate the post-magic header fields; return the body length."""
    version, _flags, length = _V2_TAIL.unpack_from(head, len(_MAGIC))
    if version != PROTOCOL_V2:
        raise ProtocolError(f"unsupported protocol version {version}")
    return _check_length(length)


# ----------------------------------------------------------------------
# Async reader
# ----------------------------------------------------------------------
async def _read_exactly(reader: asyncio.StreamReader, n: int, what: str) -> bytes:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(f"connection closed mid-{what}") from exc


async def read_frame_versioned(
    reader: asyncio.StreamReader,
) -> tuple[dict[str, Any], int] | None:
    """Read one message and the protocol version it arrived in.

    ``None`` on clean EOF at a frame boundary.  Raises
    :class:`ProtocolError` on a torn header (``connection closed
    mid-header``), a torn body (``connection closed mid-frame``), an
    oversized declared length, or an undecodable body — the identical
    errors, with the identical messages, as the sync reader.
    """
    try:
        head = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    if head[:len(_MAGIC)] == _MAGIC:
        head += await _read_exactly(
            reader, _V2_HEADER_SIZE - _HEADER.size, "header"
        )
        length = _parse_v2_tail(head)
        body = await _read_exactly(reader, length, "frame")
        return unpack_payload(body), PROTOCOL_V2
    (length,) = _HEADER.unpack(head)
    _check_length(length)
    body = await _read_exactly(reader, length, "frame")
    return _decode_json_body(body), PROTOCOL_V1


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message (either version); ``None`` on clean EOF."""
    frame = await read_frame_versioned(reader)
    return None if frame is None else frame[0]


async def read_frame_raw(
    reader: asyncio.StreamReader,
) -> tuple[bytes, int] | None:
    """Read one frame without decoding it: ``(raw_body, version)``.

    The v2 body is returned verbatim (:func:`peek_meta` routes on it,
    :func:`unpack_payload` fully decodes it, :func:`frame_header` +
    the raw bytes forward it); the v1 body is the JSON bytes.  Same
    EOF/torn-frame contract as :func:`read_frame_versioned`.
    """
    try:
        head = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    if head[:len(_MAGIC)] == _MAGIC:
        head += await _read_exactly(
            reader, _V2_HEADER_SIZE - _HEADER.size, "header"
        )
        length = _parse_v2_tail(head)
        return await _read_exactly(reader, length, "frame"), PROTOCOL_V2
    (length,) = _HEADER.unpack(head)
    _check_length(length)
    return await _read_exactly(reader, length, "frame"), PROTOCOL_V1


# ----------------------------------------------------------------------
# Sync reader
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int, what: str) -> bytearray | None:
    """Receive exactly ``n`` bytes into one preallocated buffer.

    ``recv_into`` over a ``memoryview`` fills the buffer in place — no
    per-chunk bytes objects and no join copy, which matters at v2 frame
    sizes.  ``None`` on EOF before the first byte; a torn read raises
    ``connection closed mid-{what}``.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    received = 0
    while received < n:
        chunk = sock.recv_into(view[received:], n - received)
        if chunk == 0:
            if received == 0:
                return None
            raise ProtocolError(f"connection closed mid-{what}")
        received += chunk
    return buf


def read_frame_sync_versioned(
    sock: socket.socket,
) -> tuple[dict[str, Any], int] | None:
    """Blocking counterpart of :func:`read_frame_versioned`."""
    head = _recv_exactly(sock, _HEADER.size, "header")
    if head is None:
        return None
    if head[:len(_MAGIC)] == _MAGIC:
        tail = _recv_exactly(sock, _V2_HEADER_SIZE - _HEADER.size, "header")
        if tail is None:
            raise ProtocolError("connection closed mid-header")
        length = _parse_v2_tail(head + tail)
        body = _recv_exactly(sock, length, "frame")
        if body is None:
            raise ProtocolError("connection closed mid-frame")
        return unpack_payload(bytes(body)), PROTOCOL_V2
    (length,) = _HEADER.unpack(head)
    _check_length(length)
    body = _recv_exactly(sock, length, "frame")
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_json_body(body), PROTOCOL_V1


def read_frame_sync(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking counterpart of :func:`read_frame`."""
    frame = read_frame_sync_versioned(sock)
    return None if frame is None else frame[0]


def write_frame_sync(
    sock: socket.socket, payload: dict[str, Any], version: int = PROTOCOL_V1
) -> None:
    """Blocking send of one message."""
    sock.sendall(encode_frame(payload, version=version))
