"""Rebalancing-as-a-service: the repo's request-path layer.

Everything before this package calls solvers in-process; this package
puts the paper's online setting on the wire.  A stdlib-asyncio TCP
server speaks two negotiated wire formats on one port — v1
length-prefixed JSON and v2 binary frames carrying raw array buffers
and changed-site delta snapshots (``rebalance``, ``status``, ``reset``,
``ping``) — maps requests onto named *shards* — one warm
:class:`~repro.core.engine.RebalanceEngine` each — and runs them
through the same pipeline an inference-serving stack uses::

    connections → admission queue → micro-batcher → engine pool
                  (bounded,         (max size +      (per-shard warm
                   reject +          max wait,        engines; thread
                   deadline shed)    dedupe)          fan-out or process
                                                      workers w/ affinity)

Module map: :mod:`~repro.service.protocol` (framing),
:mod:`~repro.service.admission` (bounded queue + backpressure),
:mod:`~repro.service.batching` (dynamic micro-batches),
:mod:`~repro.service.server` (the asyncio server),
:mod:`~repro.service.client` (sync + async clients),
:mod:`~repro.service.cluster` (the multi-node router: consistent-hash
shard placement, delta-replay replication, failover, live migration),
:mod:`~repro.service.loadgen` (open-loop load generator),
:mod:`~repro.service.cli` (``repro serve`` / ``repro router`` /
``repro loadgen``).
"""

from .admission import AdmissionQueue, PendingRequest
from .batching import BatchConfig, MicroBatcher, ShardLane, UniqueSolve
from .client import (
    AsyncServiceClient,
    ConnectionClosed,
    Overloaded,
    ServiceClient,
    ServiceError,
)
from .cluster import (
    BackendSpec,
    ClusterRouter,
    HashRing,
    RouterConfig,
    RouterHandle,
    ServeProcess,
    spawn_router_process,
    spawn_serve_process,
    start_router_background,
)
from .dataplane import (
    RouterWorker,
    ShardedRouter,
    default_router_workers,
    start_sharded_router,
    worker_for,
)
from .loadgen import (
    CALIBRATIONS,
    ChurnStreamConfig,
    ChurnStreamReport,
    LoadGenConfig,
    LoadGenReport,
    build_snapshots,
    calibrate_shm_workload,
    calibrate_workload,
    calibrate_wire_workload,
    run_churn_stream,
    run_loadgen,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    RebalanceEncoder,
    decode_body,
    encode_frame,
    encode_frame_into,
    error_response,
    frame_header,
    ok_response,
    pack_payload,
    peek_meta,
    read_frame,
    read_frame_raw,
    read_frame_sync,
    read_frame_sync_versioned,
    read_frame_versioned,
    unpack_payload,
    write_frame_sync,
)
from .server import (
    RebalanceServer,
    ServerConfig,
    ServerHandle,
    ShardState,
    start_background,
)

__all__ = [
    "AdmissionQueue",
    "CALIBRATIONS",
    "AsyncServiceClient",
    "BackendSpec",
    "BatchConfig",
    "ChurnStreamConfig",
    "ChurnStreamReport",
    "ClusterRouter",
    "ConnectionClosed",
    "HashRing",
    "RebalanceEncoder",
    "RouterWorker",
    "ShardedRouter",
    "RouterConfig",
    "RouterHandle",
    "ServeProcess",
    "LoadGenConfig",
    "LoadGenReport",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "Overloaded",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PendingRequest",
    "ProtocolError",
    "RebalanceServer",
    "ServerConfig",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "ShardLane",
    "ShardState",
    "UniqueSolve",
    "build_snapshots",
    "calibrate_shm_workload",
    "calibrate_workload",
    "calibrate_wire_workload",
    "decode_body",
    "default_router_workers",
    "encode_frame",
    "encode_frame_into",
    "error_response",
    "frame_header",
    "ok_response",
    "pack_payload",
    "peek_meta",
    "read_frame",
    "read_frame_raw",
    "read_frame_sync",
    "read_frame_sync_versioned",
    "read_frame_versioned",
    "run_churn_stream",
    "run_loadgen",
    "spawn_router_process",
    "spawn_serve_process",
    "start_background",
    "start_router_background",
    "start_sharded_router",
    "unpack_payload",
    "worker_for",
    "write_frame_sync",
]
