"""Admission control: the bounded front door of the service.

A production rebalancing service must fail *sideways*, not *down*:
when requests arrive faster than the solver pool drains them, the
queue must stay bounded (constant memory, bounded worst-case latency)
and the overflow must be told to come back later instead of silently
waiting forever.  This module implements that policy:

* :class:`AdmissionQueue` — a bounded FIFO of
  :class:`PendingRequest` objects.  :meth:`AdmissionQueue.try_submit`
  either admits a request or rejects it with a ``retry_after_ms`` hint
  derived from the current backlog and an EWMA of recent per-request
  service time — the client-visible backpressure signal.
* **Deadline shedding** — a request may carry a deadline; once it
  expires the solve is pure waste, so :meth:`AdmissionQueue.shed_expired`
  drops it from a drained batch *before* the solver runs and resolves
  its future with a ``deadline exceeded`` error.  Under overload this
  converts queue delay into explicit, early failures instead of
  late-and-useless answers.

Counters (on the server's metrics collector): ``service.admitted``,
``service.rejected``, ``service.shed``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from .. import telemetry
from ..core.instance import Instance

__all__ = ["AdmissionQueue", "PendingRequest"]


@dataclass
class PendingRequest:
    """One admitted rebalance request waiting for a batch slot.

    ``deadline`` is an absolute :func:`asyncio.AbstractEventLoop.time`
    instant (``None`` = no deadline).  ``future`` resolves to the
    response dict the connection handler writes back.  ``shm`` is the
    snapshot's ``(slot, generation)`` token in the server's shared-
    memory ring when the snapshot plane holds it (``None`` otherwise);
    the submitting handler pins the slot for this request's lifetime.
    """

    shard: str
    k: int
    instance: Instance | None
    fingerprint: bytes
    enqueued_at: float
    deadline: float | None
    future: asyncio.Future = field(repr=False)
    shm: tuple[int, int] | None = None
    # Resident-path fields: ``target_seq`` names the shard's frame-log
    # position this request's fingerprint corresponds to (``instance``
    # is then ``None`` — the solve plane replays frames instead of
    # decoding a snapshot); ``install`` asks the solve plane to reseed
    # its resident arrays from ``instance`` first; ``moves_only``
    # requests the compact response form (moved sites, not the full
    # mapping).
    install: bool = False
    moves_only: bool = False
    frames: list = field(default_factory=list)
    # Set by the server when this request expired in the queue but its
    # frames (or install) must still reach the solve plane: the future
    # is already resolved, the solve plane applies without deciding.
    apply_only: bool = False

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class AdmissionQueue:
    """Bounded request queue with backpressure and deadline shedding."""

    def __init__(
        self,
        max_depth: int,
        metrics: telemetry.Collector,
        *,
        min_retry_after_ms: float = 5.0,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.metrics = metrics
        self.min_retry_after_ms = min_retry_after_ms
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue(maxsize=max_depth)
        # EWMA of per-request service time, seeded pessimistically so
        # the first retry hints are conservative rather than zero.
        self._service_time_ewma = 0.010

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (admitted, not yet drained)."""
        return self._queue.qsize()

    def retry_after_ms(self) -> float:
        """Backpressure hint: expected time for the backlog to drain."""
        estimate = 1e3 * self.depth * self._service_time_ewma
        return max(self.min_retry_after_ms, estimate)

    def note_service_time(self, seconds_per_request: float) -> None:
        """Feed the drain-rate estimate after a batch completes.

        The sample is clamped to >= 0: a backwards clock adjustment can
        hand us a negative duration, and repeatedly averaging those in
        would drag the EWMA toward (or below) zero and collapse every
        ``retry_after_ms`` hint to the floor.
        """
        self._service_time_ewma += 0.2 * (
            max(0.0, seconds_per_request) - self._service_time_ewma
        )

    # ------------------------------------------------------------------
    def try_submit(self, request: PendingRequest) -> bool:
        """Admit ``request`` or reject it (caller sends ``overloaded``)."""
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.metrics.add("service.rejected")
            return False
        self.metrics.add("service.admitted")
        self.metrics.observe("service.queue_depth", float(self.depth))
        return True

    async def get(self) -> PendingRequest:
        """Wait for the next admitted request (FIFO)."""
        return await self._queue.get()

    def drain_nowait(self) -> list[PendingRequest]:
        """Empty the queue without waiting (server shutdown path)."""
        drained: list[PendingRequest] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return drained

    async def get_nowait_or_wait(self, timeout: float) -> PendingRequest | None:
        """Next request, or ``None`` once ``timeout`` elapses."""
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            pass
        if timeout <= 0:
            return None
        try:
            return await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    # ------------------------------------------------------------------
    def shed_expired(
        self, batch: list[PendingRequest], now: float
    ) -> list[PendingRequest]:
        """Resolve already-expired requests, return the live remainder.

        Called by the batcher after draining and before solving: work
        whose deadline passed while queued is answered immediately with
        ``deadline exceeded`` and never reaches an engine.
        """
        from .protocol import error_response

        alive: list[PendingRequest] = []
        for request in batch:
            if request.expired(now):
                self.metrics.add("service.shed")
                if not request.future.done():
                    request.future.set_result(
                        error_response(
                            "deadline exceeded",
                            queued_ms=1e3 * (now - request.enqueued_at),
                        )
                    )
                if request.frames or request.install:
                    # The admission plane already committed this
                    # request's state advance; the solve plane must
                    # still apply it (without deciding) or the two
                    # would diverge.
                    request.apply_only = True
                    alive.append(request)
            else:
                alive.append(request)
        return alive

    def stats(self) -> dict[str, Any]:
        """Introspection snapshot for the ``status`` operation."""
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "service_time_ewma_ms": 1e3 * self._service_time_ewma,
            "retry_after_ms": self.retry_after_ms(),
        }
