"""Open-loop load generator for the rebalancing service.

*Open-loop* means arrivals follow the configured rate no matter how the
server is doing — request ``i`` is dispatched at ``start + i/rate``
even if every earlier request is still in flight.  That is the only
honest way to measure a service under overload: a closed loop slows its
own arrival rate to match the server and hides the collapse.

The synthetic workload mirrors the paper's setting: one simulated web
cluster whose site loads drift epoch by epoch (diurnal + flash-crowd
traffic), observed by ``duplicates`` independent frontends — so every
epoch snapshot is submitted ``duplicates`` times, back to back, which
is exactly the redundancy the server's fingerprint-dedupe batching
exists to collapse.

The report records client-observed latency percentiles (via
:class:`repro.telemetry.Histogram`), completions, rejections
(admission backpressure), shed requests (server-side deadline
expiries), transport/protocol errors, and **goodput**: completed
requests per second that made their deadline — the number a capacity
plan actually cares about.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from .. import telemetry
from ..core.instance import Instance
from .client import AsyncServiceClient, Overloaded, ServiceError, _WireState
from .protocol import ProtocolError, RebalanceEncoder
from .resident import ResidentShard

__all__ = [
    "CALIBRATIONS",
    "ChurnStreamConfig",
    "ChurnStreamReport",
    "LoadGenConfig",
    "LoadGenReport",
    "build_snapshots",
    "calibrate_shm_workload",
    "calibrate_workload",
    "calibrate_wire_workload",
    "run_churn_stream",
    "run_loadgen",
]


@dataclass(frozen=True)
class LoadGenConfig:
    """Arrival process, workload shape, and per-request policy."""

    rate: float = 50.0           # arrivals per second, open loop
    duration_s: float = 2.0      # arrival window
    connections: int = 8         # persistent connection pool size
    shard: str = "default"
    shards: int = 1              # distinct server shards round-robined
    k: int = 8
    deadline_ms: float | None = 500.0
    duplicates: int = 4          # identical submissions per snapshot
    num_sites: int = 600
    num_servers: int = 12
    epochs: int = 64             # distinct snapshots, cycled
    seed: int = 0
    timeout: float = 30.0
    retries: int = 0             # retrying would distort the open loop
    protocol: str = "json"       # "json" (v1) | "binary" (v2)
    delta: bool = False          # changed-site snapshots (binary only)
    traffic: str = "drift"       # "drift" | "steady" (sparse churn)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.duplicates <= 0:
            raise ValueError("duplicates must be positive")
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.protocol not in ("json", "binary"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.delta and self.protocol != "binary":
            raise ValueError("delta snapshots require the binary protocol")
        if self.traffic not in ("drift", "steady", "churn"):
            raise ValueError(f"unknown traffic model {self.traffic!r}")

    def shard_for(self, index: int) -> str:
        """The shard request ``index`` goes to.

        With ``shards == 1`` every request hits ``shard`` (the original
        single-lane workload).  With more, consecutive ``duplicates``
        requests share one shard and the shards round-robin, so each of
        the ``shards`` lanes sees its own coherent snapshot stream —
        the multi-shard workload the process executor parallelizes.
        """
        if self.shards == 1:
            return self.shard
        return f"{self.shard}-{(index // self.duplicates) % self.shards}"

    def snapshot_index(self, index: int) -> int:
        """Which epoch snapshot request ``index`` carries (all shards
        advance through the same epoch stream in lockstep)."""
        return index // (self.duplicates * self.shards)


@dataclass
class LoadGenReport:
    """Everything one load-generation run measured."""

    offered: int = 0
    completed: int = 0           # ok within deadline (goodput numerator)
    late: int = 0                # ok but past the client deadline
    rejected: int = 0            # admission backpressure ("overloaded")
    shed: int = 0                # server-side deadline expiry
    errors: int = 0              # transport / protocol / internal
    deltas_sent: int = 0         # requests shipped as delta frames
    fulls_sent: int = 0          # requests shipped as full snapshots
    duration_s: float = 0.0
    latency_ms: telemetry.Histogram = field(default_factory=telemetry.Histogram)

    @property
    def goodput_per_s(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_ms(self) -> float:
        return self.latency_ms.quantile(0.50)

    @property
    def p95_ms(self) -> float:
        return self.latency_ms.quantile(0.95)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms.quantile(0.99)

    def as_dict(self) -> dict[str, Any]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "late": self.late,
            "rejected": self.rejected,
            "shed": self.shed,
            "errors": self.errors,
            "deltas_sent": self.deltas_sent,
            "fulls_sent": self.fulls_sent,
            "duration_s": self.duration_s,
            "goodput_per_s": self.goodput_per_s,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "latency_ms": self.latency_ms.as_dict(),
        }

    def render(self) -> str:
        text = (
            f"offered {self.offered} in {self.duration_s:.2f}s | "
            f"goodput {self.goodput_per_s:.1f}/s "
            f"(ok {self.completed}, late {self.late}, "
            f"rejected {self.rejected}, shed {self.shed}, "
            f"errors {self.errors}) | latency ms "
            f"p50 {self.p50_ms:.1f} p95 {self.p95_ms:.1f} "
            f"p99 {self.p99_ms:.1f}"
        )
        if self.deltas_sent:
            text += f" | deltas {self.deltas_sent}/{self.deltas_sent + self.fulls_sent}"
        return text


def build_snapshots(config: LoadGenConfig) -> list[Instance]:
    """Pre-generate the epoch snapshot stream the frontends observe.

    One cluster, placement held at round-robin (the load generator
    measures the service, not the policy — migrating between snapshots
    would entangle the two).  Two traffic models:

    * ``"drift"`` (default) — diurnal cycle plus flash crowds.  The
      diurnal term moves *every* site's load every epoch: the original
      E14 workload, and the worst case for delta snapshots.
    * ``"steady"`` — flash crowds only.  Non-spiked sites keep their
      baseline popularity bit for bit, so consecutive epochs differ in
      a handful of sites: the steady-state sparse-churn regime delta
      snapshots exist for.
    * ``"churn"`` — flash crowds every epoch (probability one).  Like
      ``"steady"`` the churn is sparse, but *every* snapshot is
      guaranteed distinct, so no two consecutive requests share a
      fingerprint and the server's dedupe can never collapse them: the
      regime that isolates per-request transport cost (E16).
    """
    from ..websim.simulator import build_cluster
    from ..websim.traffic import (
        ComposedTraffic,
        DiurnalTraffic,
        FlashCrowdTraffic,
    )

    rng = np.random.default_rng(config.seed)
    cluster = build_cluster(config.num_sites, config.num_servers, rng)
    if config.traffic == "steady":
        traffic = FlashCrowdTraffic(probability=0.1)
    elif config.traffic == "churn":
        traffic = FlashCrowdTraffic(probability=1.0)
    else:
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.1))
        )
    snapshots = []
    for epoch in range(config.epochs):
        traffic.step(cluster.sites, epoch, rng)
        snapshots.append(cluster.to_instance())
    return snapshots


def calibrate_workload(
    *,
    seed: int = 14,
    target_solve_s: float = 0.015,
    num_servers: int = 32,
    k: int = 8,
    epochs: int = 24,
    max_sites: int = 24_000,
) -> tuple[LoadGenConfig, float]:
    """Grow the snapshot size until one from-scratch solve costs at
    least ``target_solve_s`` on this host; return the config and the
    measured scratch solve time.

    E14 compares serving strategies, not machines: what matters is the
    ratio between the offered rate and the naive server's capacity (one
    from-scratch solve per request).  Pinning the solve *time* rather
    than the instance *size* pins that ratio across hosts — a faster
    machine just gets a proportionally bigger cluster to rebalance.

    The default server count is deliberately high (32): solve time
    grows with both sites and servers, but wire cost only with sites,
    so hitting the target at a high ``m`` keeps the per-request JSON
    cost — which bounds what the *batched* server can absorb — low.
    """
    from ..core.partition import m_partition_rebalance

    num_sites = 1500
    while True:
        config = LoadGenConfig(
            num_sites=num_sites, num_servers=num_servers, k=k,
            epochs=epochs, seed=seed,
        )
        snapshot = build_snapshots(replace(config, epochs=1))[0]
        scratch_s = float("inf")
        for _ in range(2):  # best-of-2 strips scheduler spikes
            start = time.perf_counter()
            m_partition_rebalance(snapshot, k)
            scratch_s = min(scratch_s, time.perf_counter() - start)
        if scratch_s >= target_solve_s or num_sites * 2 > max_sites:
            return config, scratch_s
        num_sites *= 2


def calibrate_wire_workload(
    *,
    seed: int = 15,
    target_codec_s: float = 0.0035,
    num_servers: int = 16,
    k: int = 8,
    shards: int = 4,
    duplicates: int = 8,
    epochs: int = 32,
    max_sites: int = 24_000,
) -> tuple[LoadGenConfig, float]:
    """Grow the snapshot until one v1-JSON codec round — encoding a
    rebalance request plus decoding its response — costs at least
    ``target_codec_s`` on this host; return the (steady-traffic,
    multi-shard) config and the measured codec time.

    E15 compares transports, not solvers: what matters is the ratio
    between the offered rate and the rate the v1 JSON codec can push
    through a single event loop.  Pinning the codec *time* pins that
    ratio across hosts, exactly as :func:`calibrate_workload` pins the
    scratch solve time for E14.  The timed round is the client's own
    per-request serialization work — ``to_dict`` + request encode, then
    response ``json.loads`` — which is the v1 pipeline's slowest single
    stage and therefore its capacity bound no matter how many cores the
    server side has.
    """
    import json

    from .protocol import encode_frame, ok_response

    num_sites = 1500
    while True:
        config = LoadGenConfig(
            num_sites=num_sites, num_servers=num_servers, k=k,
            epochs=epochs, seed=seed, shards=shards,
            duplicates=duplicates, traffic="steady",
        )
        snapshot = build_snapshots(replace(config, epochs=1))[0]
        response_frame = encode_frame(ok_response(
            mapping=list(range(num_servers)) * (num_sites // num_servers + 1),
            guessed_opt=1.0, planned_moves=0, algorithm="engine",
            shard="calibrate",
        ))
        codec_s = float("inf")
        for _ in range(2):  # best-of-2 strips scheduler spikes
            start = time.perf_counter()
            encode_frame({
                "op": "rebalance", "shard": "calibrate", "k": k,
                "deadline_ms": 300.0, "instance": snapshot.to_dict(),
            })
            json.loads(response_frame[4:])
            codec_s = min(codec_s, time.perf_counter() - start)
        if codec_s >= target_codec_s or num_sites * 2 > max_sites:
            return config, codec_s
        num_sites *= 2


def calibrate_shm_workload(
    *,
    seed: int = 16,
    target_marshal_s: float = 0.0012,
    num_servers: int = 12,
    k: int = 8,
    epochs: int = 32,
    max_sites: int = 48_000,
) -> tuple[LoadGenConfig, float]:
    """Grow the snapshot until one inline worker-pipe marshal round —
    packing a solve entry with full arrays, unpacking it, and rebuilding
    the :class:`Instance` the way a worker process does — costs at
    least ``target_marshal_s`` on this host; return the (churn-traffic,
    delta-transport) config and the measured marshal time.

    E16 compares snapshot transports *between* the serving process and
    its workers: the inline codec path pays this marshal round per
    dispatched solve, the shm plane pays O(1) per dispatch after one
    ring write per distinct snapshot.  Pinning the marshal time pins
    the inline leg's per-request overhead across hosts, exactly as
    :func:`calibrate_wire_workload` pins the v1 codec time for E15.
    Churn traffic (every snapshot distinct, sparsely) keeps the
    fingerprint dedupe and the decision memo from collapsing repeated
    requests, so every request prices the transport.

    ``max_sites`` is deliberately tight: both legs pay the O(n)
    response mapping on the pipe and the TCP socket, so past the cap
    that *shared* cost dominates and the comparison stops isolating
    the request-side snapshot transport.
    """
    from ..core.instance import Instance
    from .protocol import pack_payload, unpack_payload

    num_sites = 6000
    while True:
        config = LoadGenConfig(
            num_sites=num_sites, num_servers=num_servers, k=k,
            epochs=epochs, seed=seed, duplicates=1,
            protocol="binary", delta=True, traffic="churn",
        )
        snapshot = build_snapshots(replace(config, epochs=1))[0]
        marshal_s = float("inf")
        for _ in range(2):  # best-of-2 strips scheduler spikes
            start = time.perf_counter()
            payload = pack_payload({
                "op": "solve",
                "lanes": [{
                    "shard": "calibrate",
                    "solves": [{
                        "k": k, "fp": "00" * 16,
                        "instance": snapshot.to_wire(),
                    }],
                }],
            })
            message = unpack_payload(payload)
            Instance.from_dict(
                message["lanes"][0]["solves"][0]["instance"]
            )
            marshal_s = min(marshal_s, time.perf_counter() - start)
        if marshal_s >= target_marshal_s or num_sites * 2 > max_sites:
            return config, marshal_s
        num_sites *= 2


async def _run_async(
    host: str, port: int, config: LoadGenConfig
) -> LoadGenReport:
    snapshots = build_snapshots(config)
    report = LoadGenReport()
    loop = asyncio.get_running_loop()

    # All connections share one wire state: the delta base belongs to
    # the frontend that observed the snapshot, not to a TCP connection.
    # Without this, every ephemeral overflow connection's first request
    # is a full O(n) snapshot — so a transient latency spike breeds
    # ephemerals, whose fulls deepen the spike, and the open loop
    # collapses into a full-snapshot storm the server never recovers
    # from.  Sharing the base keeps overflow connections on deltas.
    wire = _WireState(config.protocol, config.delta)

    def make_client() -> AsyncServiceClient:
        return AsyncServiceClient(
            host, port, timeout=config.timeout, retries=config.retries,
            wire_state=wire,
        )

    clients: list[AsyncServiceClient] = []
    pool: asyncio.Queue[AsyncServiceClient] = asyncio.Queue()
    for _ in range(config.connections):
        client = make_client()
        clients.append(client)
        pool.put_nowait(client)

    async def one_request(instance: Instance, shard: str) -> None:
        # Open loop: if every pooled connection is busy, open an
        # ephemeral one rather than queueing client-side (which would
        # hide server queueing inside client queueing).
        try:
            client = pool.get_nowait()
            ephemeral = False
        except asyncio.QueueEmpty:
            client = make_client()
            clients.append(client)
            ephemeral = True
        start = loop.time()
        try:
            await client.rebalance(
                instance, config.k,
                shard=shard, deadline_ms=config.deadline_ms,
            )
            latency_ms = 1e3 * (loop.time() - start)
            report.latency_ms.record(latency_ms)
            if config.deadline_ms is None or latency_ms <= config.deadline_ms:
                report.completed += 1
            else:
                report.late += 1
        except Overloaded:
            report.rejected += 1
        except ServiceError as exc:
            if exc.error == "deadline exceeded":
                report.shed += 1
            else:
                report.errors += 1
        except (asyncio.TimeoutError, ProtocolError, OSError):
            report.errors += 1
        finally:
            if ephemeral:
                await client.close()
            else:
                pool.put_nowait(client)

    tasks: list[asyncio.Task] = []
    start = loop.time()
    index = 0
    while True:
        send_at = start + index / config.rate
        if send_at > start + config.duration_s:
            break
        delay = send_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        snapshot = snapshots[config.snapshot_index(index) % len(snapshots)]
        tasks.append(asyncio.create_task(
            one_request(snapshot, config.shard_for(index))
        ))
        index += 1
    report.offered = index
    if tasks:
        await asyncio.gather(*tasks)
    report.duration_s = loop.time() - start

    report.deltas_sent = wire.deltas_sent
    report.fulls_sent = wire.fulls_sent
    for client in clients:
        await client.close()
    return report


def run_loadgen(host: str, port: int, config: LoadGenConfig) -> LoadGenReport:
    """Run one open-loop load generation against a live server."""
    return asyncio.run(_run_async(host, port, config))


# ----------------------------------------------------------------------
# Churn-stream mode: the closed-loop O(churn) steady-state workload.


@dataclass(frozen=True)
class ChurnStreamConfig:
    """The steady-state epoch workload the O(churn) path exists for.

    One *closed-loop* sender per shard — at most one request in flight,
    the next epoch starts only once the previous decide returned — so
    every request's delta base is exactly the server's resident tip and
    the whole pipeline (client -> router -> backend -> engine) stays on
    its incremental path.  Unlike :func:`build_snapshots` the epoch
    stream is never materialized: each sender keeps *one* resident copy
    of its shard's arrays (a client-side :class:`ResidentShard`), a
    per-epoch rng mutates ``churn`` sites in place, and the delta frame
    is built directly from the changed indices in O(churn) — no O(n)
    snapshot diffing, no O(n * epochs) memory.  Returned moves are
    applied to the local placement and ride the *next* epoch's delta,
    closing the control loop the paper's online setting describes.

    ``epoch_interval_ms`` switches a stream from closed-loop saturation
    to *paced* epochs: after the seed install, epoch ``e`` of shard
    ``i`` fires at ``anchor + (e - 1 + i / shards) * interval`` on an
    absolute schedule (a late epoch fires immediately; the schedule
    never skips).  The paper's regime is periodic reconfiguration
    epochs, not back-to-back decides — pacing measures per-decide
    latency without the queueing amplification a saturating closed
    loop adds when many shard streams share the same cores.
    """

    shard: str = "default"
    shards: int = 1              # concurrent closed-loop shard streams
    k: int = 8
    num_sites: int = 600         # per shard
    num_servers: int = 12        # per shard
    churn: int = 16              # sites mutated per shard per epoch
    epochs: int = 64             # decides per shard (incl. warmup)
    warmup_epochs: int = 3       # excluded from the steady histogram
    seed: int = 0
    deadline_ms: float | None = None
    timeout: float = 60.0
    retries: int = 2             # closed loop: overload retry is honest
    epoch_interval_ms: float | None = None  # paced epochs (None = closed loop)
    # Encode each epoch's delta frame through a reusable
    # :class:`RebalanceEncoder` (static meta serialized once, frame
    # buffer reused) instead of rebuilding the message dict and
    # re-serializing the static keys every epoch.  Off = the A side of
    # E19's client-CPU A/B; the wire semantics are identical.
    use_encoder: bool = True

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.churn <= 0:
            raise ValueError("churn must be positive")
        if self.churn >= self.num_sites:
            raise ValueError("churn must be below num_sites")
        if self.epochs <= self.warmup_epochs:
            raise ValueError("epochs must exceed warmup_epochs")
        if self.epoch_interval_ms is not None and self.epoch_interval_ms <= 0:
            raise ValueError("epoch_interval_ms must be positive")

    def shard_name(self, index: int) -> str:
        return self.shard if self.shards == 1 else f"{self.shard}-{index}"


@dataclass
class ChurnStreamReport:
    """What one churn-stream run measured.

    ``steady_ms`` holds client round-trip latencies of post-warmup
    epochs only — the warmup epochs pay the O(n) install (full
    snapshot, engine table build) that the steady state amortizes away,
    and mixing them in would hide exactly the asymptotic the mode
    exists to measure.  ``trajectories`` maps each shard to a digest of
    its (fingerprint, moves) sequence: two runs with the same config
    and seed must produce byte-identical trajectories no matter which
    server — or how many backends — served them.
    """

    shards: int = 0
    epochs: int = 0
    completed: int = 0
    errors: int = 0
    fp_mismatches: int = 0       # server tip disagreed with client tip
    deltas_sent: int = 0
    fulls_sent: int = 0
    moves_applied: int = 0
    duration_s: float = 0.0
    client_cpu_s: float = 0.0    # generator-process CPU (time.process_time)
    steady_ms: telemetry.Histogram = field(default_factory=telemetry.Histogram)
    warmup_ms: telemetry.Histogram = field(default_factory=telemetry.Histogram)
    trajectories: dict[str, str] = field(default_factory=dict)

    @property
    def steady_p50_ms(self) -> float:
        return self.steady_ms.quantile(0.50)

    @property
    def steady_p95_ms(self) -> float:
        return self.steady_ms.quantile(0.95)

    @property
    def steady_p99_ms(self) -> float:
        return self.steady_ms.quantile(0.99)

    def as_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "epochs": self.epochs,
            "completed": self.completed,
            "errors": self.errors,
            "fp_mismatches": self.fp_mismatches,
            "deltas_sent": self.deltas_sent,
            "fulls_sent": self.fulls_sent,
            "moves_applied": self.moves_applied,
            "duration_s": self.duration_s,
            "client_cpu_s": self.client_cpu_s,
            "steady_p50_ms": self.steady_p50_ms,
            "steady_p95_ms": self.steady_p95_ms,
            "steady_p99_ms": self.steady_p99_ms,
            "steady_ms": self.steady_ms.as_dict(),
            "warmup_ms": self.warmup_ms.as_dict(),
            "trajectories": dict(sorted(self.trajectories.items())),
        }

    def render(self) -> str:
        return (
            f"churn-stream {self.shards} shard(s) x {self.epochs} epochs "
            f"in {self.duration_s:.2f}s | ok {self.completed}, "
            f"errors {self.errors}, fp mismatches {self.fp_mismatches} | "
            f"deltas {self.deltas_sent}, fulls {self.fulls_sent}, "
            f"moves {self.moves_applied} | steady ms "
            f"p50 {self.steady_p50_ms:.2f} p95 {self.steady_p95_ms:.2f} "
            f"p99 {self.steady_p99_ms:.2f}"
        )


def _churn_stream_seed_instance(
    config: ChurnStreamConfig, rng: np.random.Generator
) -> Instance:
    """Vectorized seed snapshot: Zipf site loads, unit migration costs,
    round-robin placement — the same distribution websim's
    ``build_cluster`` produces, generated as three numpy arrays.  The
    object-graph path (one ``Website`` per site) costs ~0.5s of CPU and
    hundreds of MB of transient objects per shard at 1M sites; huge-n
    churn streams cannot afford either.
    """
    from ..websim.traffic import zipf_popularities

    n = config.num_sites
    sizes = np.maximum(
        zipf_popularities(n, exponent=0.9), 1e-9
    )
    return Instance(
        sizes=sizes,
        costs=np.ones(n, dtype=np.float64),
        num_processors=config.num_servers,
        initial=np.arange(n, dtype=np.int64) % config.num_servers,
    )


async def _churn_stream_shard(
    host: str,
    port: int,
    config: ChurnStreamConfig,
    shard_index: int,
    report: ChurnStreamReport,
    seed_barrier: "asyncio.Barrier | None" = None,
) -> None:
    """One shard's closed loop: mutate, delta, decide, apply, repeat."""
    loop = asyncio.get_running_loop()
    shard = config.shard_name(shard_index)
    rng = np.random.default_rng([config.seed, shard_index])
    res = ResidentShard(_churn_stream_seed_instance(config, rng))
    digest = hashlib.sha256()
    moves_idx = np.empty(0, dtype=np.int64)
    moves_to = np.empty(0, dtype=np.int64)
    client = AsyncServiceClient(
        host, port, timeout=config.timeout, retries=config.retries,
        protocol="binary",
    )
    interval_s = (
        None if config.epoch_interval_ms is None
        else config.epoch_interval_ms / 1e3
    )
    anchor: float | None = None

    def full_message() -> dict[str, Any]:
        return {
            "op": "rebalance", "shard": shard, "k": config.k,
            "moves_only": True,
            "instance": res.export_instance().to_wire(),
        }

    # The static half of every delta epoch's message never changes —
    # serialize it exactly once and splice each epoch's delta into a
    # reusable frame buffer instead of rebuilding the dict and paying
    # json.dumps for the same keys epochs times per shard.
    static_meta: dict[str, Any] = {
        "op": "rebalance", "shard": shard, "k": config.k,
        "moves_only": True,
    }
    if config.deadline_ms is not None:
        static_meta["deadline_ms"] = config.deadline_ms
    encoder = RebalanceEncoder(static_meta) if config.use_encoder else None

    try:
        for epoch in range(config.epochs):
            encoded: memoryview | None = None
            if epoch == 0:
                # Seed the server's resident tip: one full snapshot.
                message = full_message()
                report.fulls_sent += 1
            else:
                if interval_s is not None:
                    # Paced mode: epochs fire on an absolute schedule
                    # anchored once *every* shard's O(n) seed install
                    # has completed (otherwise a fast shard's steady
                    # epochs overlap slower shards' installs and
                    # measure install contention, not decides),
                    # staggered across shard streams so decides don't
                    # land in lockstep.  A late epoch fires
                    # immediately — the schedule never skips.
                    if anchor is None:
                        if seed_barrier is not None:
                            await seed_barrier.wait()
                        anchor = loop.time()
                    next_t = anchor + interval_s * (
                        epoch - 1 + shard_index / config.shards
                    )
                    delay = next_t - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                # O(churn) epoch step: draw the churned sites, fold in
                # last epoch's moves, and build the delta frame straight
                # from the changed indices — the resident arrays ARE the
                # state, nothing O(n) happens here.
                c_idx = np.sort(rng.choice(
                    config.num_sites, size=config.churn, replace=False
                ))
                c_sizes = np.maximum(
                    res.sizes[c_idx]
                    * rng.uniform(0.6, 1.8, config.churn),
                    1e-9,
                )
                idx = np.union1d(c_idx, moves_idx)
                new_sizes = res.sizes[idx].copy()
                new_costs = res.costs[idx].copy()
                new_initial = res.initial[idx].copy()
                new_sizes[np.searchsorted(idx, c_idx)] = c_sizes
                if moves_idx.shape[0]:
                    new_initial[np.searchsorted(idx, moves_idx)] = moves_to
                delta = {
                    "base": res.fp_hex, "idx": idx, "sizes": new_sizes,
                    "costs": new_costs, "initial": new_initial,
                }
                # Advance the local tip *before* sending: the server
                # answers with the post-delta fingerprint, and the next
                # epoch rebases on it whether or not this response is
                # late.
                frame, fp = res.preview(delta)
                res.commit(frame, fp)
                if encoder is not None:
                    message = None
                    encoded = encoder.encode(delta)
                else:
                    message = {
                        "op": "rebalance", "shard": shard, "k": config.k,
                        "moves_only": True, "delta": delta,
                    }
                report.deltas_sent += 1
            if message is not None and config.deadline_ms is not None:
                message["deadline_ms"] = config.deadline_ms

            start = loop.time()
            try:
                if encoded is not None:
                    response = await client.call_encoded(
                        encoded, shard=shard
                    )
                else:
                    response = await client.call(message)
                if (
                    not response.get("ok")
                    and response.get("error") == "unknown base"
                ):
                    # Server lost (or never had) our base — resync with
                    # the current tip and continue the stream from it.
                    report.fulls_sent += 1
                    message = full_message()
                    if config.deadline_ms is not None:
                        message["deadline_ms"] = config.deadline_ms
                    response = await client.call(message)
            except (ServiceError, asyncio.TimeoutError, ProtocolError,
                    OSError):
                report.errors += 1
                moves_idx = np.empty(0, dtype=np.int64)
                moves_to = np.empty(0, dtype=np.int64)
                continue
            rtt_ms = 1e3 * (loop.time() - start)

            if not response.get("ok"):
                report.errors += 1
                moves_idx = np.empty(0, dtype=np.int64)
                moves_to = np.empty(0, dtype=np.int64)
                continue
            if epoch >= config.warmup_epochs:
                report.steady_ms.record(rtt_ms)
            else:
                report.warmup_ms.record(rtt_ms)
            if response.get("fingerprint") != res.fp_hex:
                report.fp_mismatches += 1

            if "moves_idx" in response:
                moves_idx = np.asarray(response["moves_idx"], dtype=np.int64)
                moves_to = np.asarray(response["moves_to"], dtype=np.int64)
            else:
                # A server that ignores moves_only answers with the
                # full mapping; reduce it to moves locally.
                mapping = np.asarray(response["mapping"], dtype=np.int64)
                moves_idx = np.flatnonzero(mapping != res.initial)
                moves_to = mapping[moves_idx]
            report.moves_applied += int(moves_idx.shape[0])
            report.completed += 1
            digest.update(bytes.fromhex(res.fp_hex))
            digest.update(moves_idx.tobytes())
            digest.update(moves_to.tobytes())
    finally:
        await client.close()
    report.trajectories[shard] = digest.hexdigest()


async def _run_churn_stream_async(
    host: str, port: int, config: ChurnStreamConfig
) -> ChurnStreamReport:
    loop = asyncio.get_running_loop()
    report = ChurnStreamReport(shards=config.shards, epochs=config.epochs)
    seed_barrier = (
        asyncio.Barrier(config.shards)
        if config.epoch_interval_ms is not None and config.shards > 1
        else None
    )
    start = loop.time()
    cpu_start = time.process_time()
    await asyncio.gather(*(
        _churn_stream_shard(host, port, config, i, report, seed_barrier)
        for i in range(config.shards)
    ))
    report.client_cpu_s = time.process_time() - cpu_start
    report.duration_s = loop.time() - start
    return report


def run_churn_stream(
    host: str, port: int, config: ChurnStreamConfig
) -> ChurnStreamReport:
    """Run one closed-loop churn-stream workload against a live server."""
    return asyncio.run(_run_churn_stream_async(host, port, config))


# The scenario catalog's workload-axis registry: a scenario names its
# calibration ("service", "wire", "shm") instead of importing a
# function, so record files document which host-speed pin sized the
# workload.  Each entry returns ``(LoadGenConfig, measured_seconds)``.
CALIBRATIONS = {
    "service": calibrate_workload,
    "wire": calibrate_wire_workload,
    "shm": calibrate_shm_workload,
}
