"""The sharded multi-process router data plane.

PR 7/8's :class:`~repro.service.cluster.ClusterRouter` is one asyncio
process: every solve, delta, and replication frame crosses one event
loop and one GIL, so router throughput caps the whole cluster no
matter how many backends exist behind it.  This module splits it::

    control plane (1 process)      data plane (N worker processes)
    ─────────────────────────      ────────────────────────────────
    backend health probing         accept on the SHARED port
    death declaration              own a disjoint crc32 subset of
    worker respawn (kill -9)         shards' resident tips
    peer-table broadcast           O(churn) delta passthrough
                                   zero-materialization full relay

* **Shard→worker affinity** is ``crc32(shard) % workers`` — the same
  hash family as :class:`~repro.service.cluster.HashRing` and the
  process executor's worker routing — so each worker's resident tips
  (:class:`~repro.service.resident.ResidentShard`) need no
  cross-process coordination: exactly one worker ever touches a shard.
* **The shared port** uses ``SO_REUSEPORT`` where available: every
  worker binds + listens on the same address and the kernel spreads
  incoming connections across them.  The control plane binds the port
  *without listening* — that reserves the address (and pins the
  ephemeral port for ``port=0``) while guaranteeing it never absorbs a
  connection.  Platforms without ``SO_REUSEPORT`` fall back to one
  inherited listening socket whose accept queue the workers share.
* **The ``moved`` redirect**: a client whose shard hashes to another
  worker gets ``{"error": "moved", "port": <direct port>}`` and
  reconnects to the owner's private port (cached per shard in
  ``_WireState.ports``; a stale cache entry falls back to the shared
  port on transport failure, which re-redirects).
* **The hot path is a relay**: a v2 full-snapshot ``rebalance`` is
  routed by peeking shard/k from the meta JSON alone
  (:func:`~repro.service.protocol.peek_meta`), the raw body is
  forwarded to the backend verbatim, and the backend's raw response is
  relayed back verbatim — no ``Instance`` materializes unless the
  acknowledged fingerprint is new (then the resident tip is seeded
  once so the next delta rides the O(churn) passthrough).  Responses
  the worker builds itself reuse one preallocated encode buffer per
  connection (:func:`~repro.service.protocol.encode_frame_into`).
* **Control decisions** travel over the same spawn-context
  pipe+bytes machinery :class:`~repro.parallel.PersistentWorkerPool`
  uses: the control plane broadcasts backend deaths and the
  worker-port table; workers report inline transport deaths up so
  peers hear about them.  A worker that dies (kill -9) is respawned on
  the same index — its shard subset is a pure function of the index —
  and the peer table is rebroadcast; until then peers answer brief
  ``overloaded`` backpressure for its shards instead of redirecting to
  a dead port.
* **`status` stays one coherent view**: the worker that receives it
  merges every peer's ``router.*`` metrics via
  :meth:`repro.telemetry.Collector.merge` and reports per-worker
  pids/ports (which is how the loadgen's kill-router-worker fault
  injection picks its victim).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any
from zlib import crc32

from .. import telemetry
from ..core.instance import Instance
from ..parallel import spawn_piped_process
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .cluster import BackendLink, ClusterRouter, RouterConfig
from .protocol import (
    PROTOCOL_V2,
    ProtocolError,
    decode_body,
    encode_frame,
    encode_frame_into,
    error_response,
    frame_header,
    ok_response,
    peek_meta,
    read_frame_raw,
)
from .resident import ResidentShard

__all__ = [
    "RouterWorker",
    "ShardedRouter",
    "default_router_workers",
    "start_sharded_router",
    "worker_for",
]

# Listen backlog of the shared socket (fd-fallback mode) and of each
# worker's SO_REUSEPORT socket (asyncio's default backlog applies
# there); generous because a loadgen opens its fan-out at once.
_ACCEPT_BACKLOG = 256

# retry_after_ms answered for a shard whose owning worker is mid-
# respawn: long enough that a client's bounded retry budget spans the
# respawn, short enough to stay invisible next to the respawn itself.
_RESPAWN_RETRY_MS = 200.0


def default_router_workers() -> int:
    """``min(4, cores)`` — the data plane's default width."""
    return max(1, min(4, os.cpu_count() or 1))


def worker_for(shard: str, count: int) -> int:
    """The data-plane worker index owning ``shard`` (crc32 affinity,
    the same hash family as the ring and the process executor).

    The digest is XOR-folded before the modulus: crc32's low bits are
    insensitive to low-bit changes in the trailing bytes (``"s-0"`` …
    ``"s-3"`` all share a parity), so a tiny modulus over the raw
    digest would pin every shard of a ``{base}-{i}`` family to one
    worker.  Folding the high half in restores per-suffix spread.
    """
    if count <= 1:
        return 0
    digest = crc32(shard.encode("utf-8"))
    return (digest ^ (digest >> 16)) % count


def _pipe_send(conn, message: dict[str, Any]) -> None:
    conn.send_bytes(json.dumps(message).encode("utf-8"))


# ----------------------------------------------------------------------
# Data-plane worker
# ----------------------------------------------------------------------
class RouterWorker(ClusterRouter):
    """One data-plane process: a :class:`ClusterRouter` that owns the
    crc32-affine subset ``worker_for(shard, count) == index`` and
    relays everything else with a ``moved`` redirect.

    Differences from the single-process router: no health loop (the
    control plane probes and broadcasts deaths), a second *direct*
    listener for redirected clients and peer ops, a raw-relay fast
    path for v2 full snapshots, and merged ``status``/fanned ``reset``.
    """

    def __init__(
        self,
        config: RouterConfig,
        index: int,
        count: int,
        *,
        parent_conn=None,
        shared_port: int | None = None,
        listen_sock: socket.socket | None = None,
    ) -> None:
        super().__init__(config)
        self.index = index
        self.count = count
        # Worker index -> direct port; None = that worker is down
        # (mid-respawn) and its shards get backpressure, not redirects.
        self.peer_ports: dict[int, int | None] = {}
        self._parent_conn = parent_conn
        self._shared_port = shared_port
        self._listen_sock = listen_sock
        self._direct_server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def direct_port(self) -> int:
        if self._direct_server is None or not self._direct_server.sockets:
            raise RuntimeError("worker is not listening")
        return self._direct_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._stop_event = asyncio.Event()
        for spec in self.config.backends:
            self._links[spec.name] = BackendLink(spec, self.config)
        if self._listen_sock is not None:
            # Inherited-fd fallback: every worker holds a dup of one
            # listening socket, sharing its accept queue.
            self._listen_sock.setblocking(False)
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._listen_sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host, self._shared_port,
                reuse_port=True, backlog=_ACCEPT_BACKLOG,
            )
        self._direct_server = await asyncio.start_server(
            self._handle_connection, self.config.host, 0
        )
        self._started_at = time.monotonic()
        # Deliberately no _health_loop task: death declaration is the
        # control plane's job (one prober, not N).

    async def stop(self) -> None:
        if self._direct_server is not None:
            self._direct_server.close()
            await self._direct_server.wait_closed()
            self._direct_server = None
        await super().stop()

    # -- control-plane messages -----------------------------------------
    def apply_control(self, message: dict[str, Any]) -> None:
        op = message.get("op")
        if op == "peers":
            self.peer_ports = {
                int(index): (int(port) if port is not None else None)
                for index, port in message.get("ports", {}).items()
            }
        elif op == "dead":
            self._mark_dead(str(message.get("node")), "control")
        elif op == "stop":
            self.request_stop()

    def _mark_dead(self, node: str, reason: str) -> None:
        if node in self._dead or node not in self._specs:
            return
        super()._mark_dead(node, reason)
        if reason != "control" and self._parent_conn is not None:
            # Inline transport detection: tell the control plane so it
            # rebroadcasts to the peers (their rings must agree).
            try:
                _pipe_send(self._parent_conn, {"op": "dead", "node": node})
            except (OSError, ValueError):  # pragma: no cover - parent gone
                pass

    # -- shard ownership ------------------------------------------------
    def _misroute(self, shard: str) -> dict[str, Any] | None:
        """``None`` when this worker owns the shard; otherwise the
        redirect (or backpressure) response to answer instead."""
        owner = worker_for(shard, self.count)
        if owner == self.index:
            return None
        self.metrics.add("router.moved")
        port = self.peer_ports.get(owner)
        if port is None:
            return error_response(
                "overloaded", shard=shard, retry_after_ms=_RESPAWN_RETRY_MS
            )
        return error_response("moved", shard=shard, port=port)

    # -- raw connection handling (relay fast path) ----------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.add("router.connections")
        # One reusable encode buffer per connection: asyncio's
        # transport copies on write(), so the buffer is free again
        # after the drain.
        scratch = bytearray()
        try:
            while True:
                try:
                    raw = await read_frame_raw(reader)
                except ProtocolError as exc:
                    self.metrics.add("router.protocol_errors")
                    writer.write(encode_frame(error_response(
                        "protocol error", message=str(exc))))
                    await writer.drain()
                    break
                if raw is None:
                    break
                body, version = raw
                writer.write(await self._serve_raw(body, version, scratch))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_raw(
        self, body: bytes, version: int, scratch: bytearray
    ) -> bytes | memoryview:
        """Serve one raw frame body; the response bytes to write.

        A v2 ``rebalance`` is routed from the meta JSON alone; full
        snapshots for shards this worker owns take the verbatim relay.
        Everything else (deltas on the resident tip, v1 JSON, admin
        ops) decodes and dispatches exactly as the single-process
        router does.
        """
        if version == PROTOCOL_V2:
            try:
                meta = peek_meta(body)
            except ProtocolError as exc:
                self.metrics.add("router.protocol_errors")
                return encode_frame_into(
                    error_response("protocol error", message=str(exc)),
                    scratch, version=version,
                )
            if meta.get("op") == "rebalance":
                shard = str(meta.get("shard", "default"))
                miss = self._misroute(shard)
                if miss is not None:
                    return encode_frame_into(miss, scratch, version=version)
                if "delta" not in meta and "instance" in meta:
                    return await self._relay_rebalance(
                        shard, meta, body, version, scratch
                    )
        try:
            message = decode_body(body, version)
        except ProtocolError as exc:
            self.metrics.add("router.protocol_errors")
            return encode_frame_into(
                error_response("protocol error", message=str(exc)),
                scratch, version=version,
            )
        response = await self._dispatch(message)
        return encode_frame_into(response, scratch, version=version)

    async def _relay_rebalance(
        self,
        shard: str,
        meta: dict[str, Any],
        body: bytes,
        version: int,
        scratch: bytearray,
    ) -> bytes | memoryview:
        """Zero-materialization forward of a v2 full snapshot: raw
        request bytes to the owner, raw response bytes back (a full's
        fingerprint is bit-identical whether this worker or the
        backend computes it, so no re-stamp is needed)."""
        self.metrics.add("router.requests")
        self.metrics.add("router.relayed_fulls")
        try:
            k = int(meta.get("k", 2))
        except (TypeError, ValueError):
            self.metrics.add("router.bad_requests")
            return encode_frame_into(
                error_response("bad request", message="k must be an integer"),
                scratch, version=version,
            )
        if not await self._relay_admit():
            return encode_frame_into(
                self._relay_rejection(), scratch, version=version
            )
        try:
            runtime = self._runtime(shard)
            if runtime.gate is not None:
                await runtime.gate.wait()
            runtime.inflight += 1
            try:
                outcome = await self._relay_route(shard, body, version)
            finally:
                runtime.inflight -= 1
                if runtime.inflight == 0 and runtime.drained is not None:
                    runtime.drained.set()
        finally:
            await self._relay_release()
        if isinstance(outcome, dict):
            return encode_frame_into(outcome, scratch, version=version)
        resp_meta, resp_body, resp_version = outcome
        if resp_meta.get("ok"):
            fp_hex = resp_meta.get("fingerprint")
            if isinstance(fp_hex, str):
                self._seed_resident(shard, fp_hex, k, body)
        return b"".join(
            (frame_header(len(resp_body), version=resp_version), resp_body)
        )

    async def _relay_route(
        self, shard: str, body: bytes, version: int
    ) -> tuple[dict[str, Any], bytes, int] | dict[str, Any]:
        """The relay's failover loop — same shape as ``_route_solve``:
        transport failures (only) declare the node dead and replay the
        identical bytes on the re-resolved owner."""
        last_error: Exception | None = None
        for _ in range(len(self._specs) + 1):
            node = self._owner(shard)
            if node is None:
                break
            link = self._links[node]
            try:
                return await asyncio.wait_for(
                    link.relay(body, version), self.config.backend_timeout
                )
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                last_error = exc
                self._mark_dead(node, "transport")
                self.metrics.add("router.failover_replays")
                continue
        detail = f": {last_error}" if last_error is not None else ""
        return error_response(
            "no backends alive", message=f"routing failed{detail}"
        )

    def _seed_resident(
        self, shard: str, fp_hex: str, k: int, body: bytes
    ) -> None:
        """(Re)seed the resident tip from the relayed request's own
        bytes so the next delta rides the O(churn) passthrough.  When
        the tip already holds the acknowledged fingerprint (steady
        resends), nothing decodes at all."""
        runtime = self._runtime(shard)
        res = self._residents.get(shard)
        if res is None or res.fp_hex != fp_hex:
            try:
                message = decode_body(body, PROTOCOL_V2)
                instance = Instance.from_dict(message["instance"])
            except (ProtocolError, KeyError, TypeError, ValueError):
                return  # never let bookkeeping break the relayed reply
            self._remember_base(shard, fp_hex, instance)
            self._residents[shard] = ResidentShard(instance)
        runtime.latest = (fp_hex, k)
        self._enqueue_replication(shard, ("full", k))

    # -- dispatch / aggregate ops ---------------------------------------
    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op in ("rebalance", "migrate"):
            miss = self._misroute(str(message.get("shard", "default")))
            if miss is not None:
                return miss
        if op == "worker-status":
            return self._op_worker_status()
        if op == "worker-reset":
            return self._op_worker_reset(message)
        return await super()._dispatch(message)

    def _worker_info(self) -> dict[str, Any]:
        return {
            "index": self.index, "pid": os.getpid(),
            "port": self.direct_port,
        }

    def _op_worker_status(self) -> dict[str, Any]:
        """This worker's slice, for a peer assembling the merged view."""
        return ok_response(router={
            "shards": len(self._shards),
            "residents": {
                name: res.fp_hex for name, res in self._residents.items()
            },
            "overrides": dict(self._overrides),
            "metrics": self.metrics.as_dict(),
            "worker": self._worker_info(),
        })

    def _op_worker_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        """Local-only state clear; the initiating worker already reset
        the backends once."""
        shard = message.get("shard")
        if shard is None:
            self._bases.clear()
            self._residents.clear()
            self._shards.clear()
            for link in self._links.values():
                link.wire.forget(None)
        else:
            name = str(shard)
            self._bases.pop(name, None)
            self._residents.pop(name, None)
            self._shards.pop(name, None)
            for link in self._links.values():
                link.wire.forget(name)
        return ok_response(op="worker-reset")

    async def _peer_call(
        self, port: int, message: dict[str, Any]
    ) -> dict[str, Any]:
        client = AsyncServiceClient(
            self.config.host, port,
            timeout=self.config.backend_timeout, retries=0,
        )
        try:
            return await client.call(message)
        finally:
            await client.close()

    async def _op_status(self) -> dict[str, Any]:
        """The merged view: own slice + every peer's, one coherent
        ``router.*`` metrics dict via :meth:`Collector.merge`."""
        base = await super()._op_status()
        router = base["router"]
        merged = telemetry.Collector()
        merged.merge(self.metrics.as_dict())
        shards = len(self._shards)
        residents = dict(router["residents"])
        overrides = dict(router["overrides"])
        workers: dict[str, Any] = {str(self.index): self._worker_info()}
        for index in range(self.count):
            if index == self.index:
                continue
            port = self.peer_ports.get(index)
            if port is None:
                workers[str(index)] = {"index": index, "pid": None, "port": None}
                continue
            try:
                response = await asyncio.wait_for(
                    self._peer_call(port, {"op": "worker-status"}),
                    self.config.backend_timeout,
                )
                peer = response["router"]
            except (OSError, ProtocolError, ServiceError,
                    asyncio.TimeoutError, KeyError) as exc:
                workers[str(index)] = {
                    "index": index, "port": port, "error": str(exc),
                }
                continue
            merged.merge(peer.get("metrics", {}))
            shards += int(peer.get("shards", 0))
            residents.update(peer.get("residents", {}))
            overrides.update(peer.get("overrides", {}))
            workers[str(index)] = peer.get(
                "worker", {"index": index, "port": port}
            )
        router["metrics"] = merged.as_dict()
        router["shards"] = shards
        router["residents"] = residents
        router["overrides"] = overrides
        router["workers"] = workers
        router["worker"] = self._worker_info()
        return base

    async def _op_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        """Reset the backends once (super), then fan a local-only
        clear to every peer."""
        response = await super()._op_reset(message)
        fan: dict[str, Any] = {"op": "worker-reset"}
        if message.get("shard") is not None:
            fan["shard"] = str(message["shard"])
        for index in range(self.count):
            if index == self.index:
                continue
            port = self.peer_ports.get(index)
            if port is None:
                continue
            try:
                await self._peer_call(port, fan)
            except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError):
                continue
        return response


# ----------------------------------------------------------------------
# Worker process main
# ----------------------------------------------------------------------
async def _worker_serve(
    conn, index: int, count: int, config: RouterConfig,
    shared_port: int | None, listen_sock: socket.socket | None,
) -> None:
    worker = RouterWorker(
        config, index, count,
        parent_conn=conn, shared_port=shared_port, listen_sock=listen_sock,
    )
    await worker.start()
    loop = asyncio.get_running_loop()

    def on_parent_message() -> None:
        try:
            while conn.poll(0):
                payload = conn.recv_bytes()
                if not payload:
                    raise EOFError
                worker.apply_control(json.loads(payload.decode("utf-8")))
        except (EOFError, OSError):
            # Parent gone: an orphaned data plane must not outlive the
            # control plane that owns its port.
            try:
                loop.remove_reader(conn.fileno())
            except (OSError, ValueError):
                pass
            worker.request_stop()

    loop.add_reader(conn.fileno(), on_parent_message)
    _pipe_send(conn, {
        "op": "ready", "index": index,
        "port": worker.direct_port, "pid": os.getpid(),
    })
    try:
        await worker.serve_forever()
    finally:
        try:
            loop.remove_reader(conn.fileno())
        except (OSError, ValueError):
            pass


def _worker_main(
    conn, index: int, count: int, config: RouterConfig,
    shared_port: int | None, listen_sock: socket.socket | None,
) -> None:
    """Spawn target of one data-plane worker process."""
    # The control plane owns orderly shutdown (a "stop" pipe message);
    # a terminal's ^C must not race it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(
            _worker_serve(conn, index, count, config, shared_port, listen_sock)
        )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------
class ShardedRouter:
    """The control plane: spawns/respawns the data-plane workers,
    probes backend health, and broadcasts ring-changing decisions.

    Plain threads and blocking pipes — the control plane is off every
    hot path, and :func:`multiprocessing.connection.wait` over the
    worker pipes *and* process sentinels gives it both inline death
    reports and kill -9 detection from one select loop.
    """

    def __init__(
        self,
        config: RouterConfig,
        workers: int = 0,
        *,
        reuse_port: bool | None = None,
    ) -> None:
        if workers <= 0:
            workers = default_router_workers()
        self.config = config
        self.workers = workers
        self.respawns = 0
        self._reuse_port = (
            reuse_port if reuse_port is not None
            else hasattr(socket, "SO_REUSEPORT")
        )
        self._shared_sock: socket.socket | None = None
        self._procs: list[Any] = [None] * workers
        self._conns: list[Any] = [None] * workers
        self._ports: dict[int, int | None] = {i: None for i in range(workers)}
        self._pids: dict[int, int | None] = {i: None for i in range(workers)}
        self._dead: set[str] = set()
        self._misses: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        if self._shared_sock is None:
            raise RuntimeError("sharded router is not listening")
        return self._shared_sock.getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    def worker_pids(self) -> dict[int, int | None]:
        return dict(self._pids)

    def start(self, timeout_s: float = 60.0) -> "ShardedRouter":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self._reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
                # Deliberately NOT listening: the bind reserves the
                # address (and pins an ephemeral port) while the kernel
                # spreads connections over the *listening* worker
                # sockets only.
            else:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.config.host, self.config.port))
                sock.listen(_ACCEPT_BACKLOG)
        except BaseException:
            sock.close()
            raise
        self._shared_sock = sock
        try:
            for index in range(self.workers):
                self._spawn_worker(index, timeout_s)
        except BaseException:
            self.stop()
            raise
        self._broadcast_peers()
        self._thread = threading.Thread(
            target=self._control_loop, name="repro-router-control", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=timeout_s)
        self._thread = None
        self._broadcast({"op": "stop"})
        for index, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=timeout_s)
            if proc.is_alive():  # pragma: no cover - orderly stop hung
                proc.terminate()
                proc.join(timeout=timeout_s)
            self._procs[index] = None
        for index, conn in enumerate(self._conns):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                self._conns[index] = None
        if self._shared_sock is not None:
            self._shared_sock.close()
            self._shared_sock = None

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- worker management ----------------------------------------------
    def _spawn_worker(self, index: int, timeout_s: float = 60.0) -> None:
        if self._reuse_port:
            proc, conn = spawn_piped_process(
                _worker_main, index, self.workers, self.config,
                self.port, None,
            )
        else:
            # The listening socket rides the spawn pickling
            # (multiprocessing.reduction dups the fd into the child).
            proc, conn = spawn_piped_process(
                _worker_main, index, self.workers, self.config,
                None, self._shared_sock,
            )
        payload = None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if conn.poll(0.1):
                try:
                    payload = conn.recv_bytes()
                except (EOFError, OSError):
                    payload = None
                break
            if not proc.is_alive():
                break
        message = json.loads(payload.decode("utf-8")) if payload else {}
        if message.get("op") != "ready":
            conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10.0)
            raise RuntimeError(f"router worker {index} failed to start")
        self._procs[index] = proc
        self._conns[index] = conn
        self._ports[index] = int(message["port"])
        self._pids[index] = int(message.get("pid") or proc.pid)
        # A (re)spawned worker needs the deaths it missed: its ring
        # must agree with the peers'.
        for node in sorted(self._dead):
            try:
                _pipe_send(conn, {"op": "dead", "node": node})
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _respawn(self, index: int) -> None:
        """A worker died (kill -9, crash): drop it from the peer table
        immediately — peers answer brief backpressure for its shards
        instead of redirecting to a dead port — then respawn on the
        same index (the shard subset is a pure function of the index)
        and rebroadcast."""
        conn = self._conns[index]
        proc = self._procs[index]
        self._conns[index] = None
        self._procs[index] = None
        self._ports[index] = None
        self._pids[index] = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10.0)
        if self._stop.is_set():
            return
        self._broadcast_peers()
        self.respawns += 1
        try:
            self._spawn_worker(index)
        except RuntimeError:  # pragma: no cover - degraded but alive
            return
        self._broadcast_peers()

    # -- broadcasts -----------------------------------------------------
    def _broadcast(self, message: dict[str, Any]) -> None:
        for conn in self._conns:
            if conn is None:
                continue
            try:
                _pipe_send(conn, message)
            except (OSError, ValueError, BrokenPipeError):
                continue

    def _broadcast_peers(self) -> None:
        self._broadcast({
            "op": "peers",
            "ports": {str(i): p for i, p in self._ports.items()},
        })

    def _declare_dead(self, node: str) -> None:
        if node in self._dead:
            return
        self._dead.add(node)
        self._broadcast({"op": "dead", "node": node})

    # -- the control loop -----------------------------------------------
    def _control_loop(self) -> None:
        probes = {
            spec.name: ServiceClient(
                spec.host, spec.port,
                timeout=self.config.health_timeout_s, retries=0,
            )
            for spec in self.config.backends
        }
        try:
            next_health = time.monotonic() + self.config.health_interval_s
            while not self._stop.is_set():
                handles: dict[Any, int] = {}
                for index, conn in enumerate(self._conns):
                    if conn is not None:
                        handles[conn] = index
                for index, proc in enumerate(self._procs):
                    if proc is not None:
                        handles[proc.sentinel] = index
                timeout = min(0.25, max(0.01, next_health - time.monotonic()))
                try:
                    ready = mp_connection.wait(list(handles), timeout=timeout)
                except OSError:  # pragma: no cover - handle died mid-wait
                    ready = []
                down: set[int] = set()
                for handle in ready:
                    index = handles.get(handle)
                    if index is None or index in down:
                        continue
                    conn = self._conns[index]
                    if handle is conn:
                        try:
                            while conn.poll(0):
                                payload = conn.recv_bytes()
                                if not payload:
                                    raise EOFError
                                self._on_worker_message(
                                    index,
                                    json.loads(payload.decode("utf-8")),
                                )
                        except (EOFError, OSError):
                            down.add(index)
                    else:
                        down.add(index)  # sentinel: the process exited
                for index in down:
                    self._respawn(index)
                if time.monotonic() >= next_health:
                    next_health = (
                        time.monotonic() + self.config.health_interval_s
                    )
                    self._probe_backends(probes)
        finally:
            for client in probes.values():
                client.close()

    def _on_worker_message(self, index: int, message: dict[str, Any]) -> None:
        if message.get("op") == "dead":
            # One worker saw a transport failure: every peer's ring
            # must follow (the broadcast reaches the reporter too;
            # _mark_dead is idempotent there).
            self._declare_dead(str(message.get("node")))

    def _probe_backends(self, probes: dict[str, ServiceClient]) -> None:
        for spec in self.config.backends:
            if spec.name in self._dead:
                continue
            try:
                alive = bool(
                    probes[spec.name].call({"op": "health"}).get("ok")
                )
            except (OSError, ProtocolError, ServiceError):
                alive = False
            if alive:
                self._misses[spec.name] = 0
            else:
                self._misses[spec.name] = self._misses.get(spec.name, 0) + 1
                if self._misses[spec.name] >= self.config.health_misses:
                    self._declare_dead(spec.name)


def start_sharded_router(
    config: RouterConfig, workers: int = 0, *, reuse_port: bool | None = None
) -> ShardedRouter:
    """Start a control plane + ``workers`` data-plane processes; blocks
    until every worker accepts.  The returned handle is a context
    manager whose ``port`` is the shared client-facing port."""
    return ShardedRouter(config, workers, reuse_port=reuse_port).start()
