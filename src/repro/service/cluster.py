"""The cluster tier: a shard-routing coordinator over N backend nodes.

One host saturates (process executor + shm snapshot plane), so the
next order of magnitude is across hosts.  :class:`ClusterRouter` is a
coordinator process that speaks the existing v2 binary protocol (and
v1 JSON) on *both* sides: clients connect to the router exactly as
they would to a single ``serve`` node, and the router places shards on
backend nodes by consistent hashing::

    clients → router ─┬→ backend A (serve)   shard placement: vnode
                      ├→ backend B (serve)   ring keyed by crc32, the
                      └→ backend C (serve)   same hash as the process
                                             executor's worker affinity

Placing shards on nodes is itself an online load-balancing instance —
nodes arrive and depart, shards must move as little as possible — so
the placement uses a consistent-hash ring (``vnodes`` points per node):
removing one of ``N`` nodes reassigns only ``~1/N`` of the shards,
which is the ring's analogue of the paper's bounded per-epoch moves.

**Replication is delta replay.**  The client→router delta stream of
PR 5 is already a complete, fingerprinted log of every shard's
snapshot history, so the router replays exactly those frames at the
shard's standby (the next distinct node clockwise on the ring) via the
``replicate`` op: same codec, same base LRU, same ``unknown base`` →
one-full-snapshot degradation.  The delta log *is* the replication
log; there is no second snapshot format to keep consistent.

**Failover.**  A backend death is observed either by the health loop
(``health`` probes, ``health_misses`` strikes) or inline by a
transport error on a forwarded request.  Either way the node leaves
the ring, routing re-resolves to the next owner — which, for shards
the dead node owned, is the standby that has been absorbing the
replica stream — and the in-flight requests that failed with the node
are replayed on the new owner (a rebalance decision is a pure function
of ``(snapshot, k)``, so replay is idempotent).  Clients observe a
latency blip, never an error.

**Live migration.**  ``migrate(shard, target)`` drains the shard's
in-flight requests behind a gate, ships the latest base snapshot (and
its warm-engine fingerprint) to the new owner as one ``replicate``
frame, then flips a routing override and reopens the gate.  The new
owner's first solve warms its engine from the shipped base exactly as
a cold client would — byte-identical decisions throughout, because
every node runs the same engine contract.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import threading
import time
from bisect import bisect_right
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any
from zlib import crc32

import numpy as np

from .. import telemetry
from ..core.engine import snapshot_fingerprint
from ..core.instance import Instance, apply_delta
from .client import AsyncServiceClient, Overloaded, ServiceError, _WireState
from .resident import Frame, ResidentShard
from .protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame_versioned,
)

__all__ = [
    "BackendSpec",
    "ClusterRouter",
    "HashRing",
    "RouterConfig",
    "RouterHandle",
    "ServeProcess",
    "spawn_serve_process",
    "start_router_background",
]


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node contributes ``vnodes`` points ``crc32(f"{node}#{i}")``;
    a shard lands on the first point clockwise of ``crc32(shard)``.
    The hash is the same crc32-of-utf-8 the process executor uses for
    shard→worker affinity, so the two placement layers agree on what
    "the shard's hash" means.  Node ids are logical names (decoupled
    from host:port), so ring layout is a pure function of the names —
    deterministic across runs regardless of ephemeral ports.
    """

    def __init__(self, nodes: tuple[str, ...] = (), *, vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (hash, node)
        self._hashes: list[int] = []              # the points' hashes
        for node in nodes:
            self.add(node)

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (crc32(f"{node}#{i}".encode("utf-8")), node)
            for i in range(self.vnodes)
        ]

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend(self._node_points(node))
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._hashes = [h for h, _ in self._points]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def owner(self, shard: str) -> str | None:
        """The shard's primary, or ``None`` on an empty ring."""
        owners = self.owners(shard, 1)
        return owners[0] if owners else None

    def owners(self, shard: str, count: int = 2) -> list[str]:
        """Up to ``count`` distinct nodes clockwise from the shard's
        point: ``[primary, standby, ...]`` in preference order."""
        if not self._points or count <= 0:
            return []
        start = bisect_right(self._hashes, crc32(shard.encode("utf-8")))
        found: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendSpec:
    """One backend ``serve`` node the router places shards on."""

    name: str
    host: str
    port: int

    @classmethod
    def parse(cls, text: str, index: int) -> "BackendSpec":
        """``"name=host:port"`` or ``"host:port"`` (auto-named)."""
        name, eq, addr = text.rpartition("=")
        if not eq:
            name = f"backend-{index}"
        host, colon, port_text = addr.rpartition(":")
        if not colon or not host or not port_text.isdigit():
            raise ValueError(f"backend must look like [name=]host:port, got {text!r}")
        return cls(name=name, host=host, port=int(port_text))


@dataclass(frozen=True)
class RouterConfig:
    """Everything the router's behavior depends on."""

    backends: tuple[BackendSpec, ...]
    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read it back from router.port
    vnodes: int = 64
    replicate: bool = True          # stream each shard to its standby
    repl_coalesce_s: float = 0.0     # drain delay: batch frames, keep
    #                                  replication off the response tail
    health_interval_s: float = 0.25  # between health probes per node
    health_timeout_s: float = 1.0    # per-probe deadline
    health_misses: int = 2           # consecutive misses before death
    connections_per_backend: int = 8
    backend_timeout: float = 30.0
    base_cache_size: int = 32        # delta bases kept per shard
    # Relay capacity pinning (the router-tier analog of ``serve
    # --solve-delay-ms``): with ``relay_concurrency`` permits each held
    # for the request plus ``relay_delay_s``, per-process rebalance
    # capacity is permits/(service+delay) *by construction* — the knob
    # E19 uses to make router scaling measurable independent of host
    # cores.  0 permits = unbounded (the default; no pinning).
    relay_concurrency: int = 0
    relay_delay_s: float = 0.0
    relay_queue: int = 64            # waiters allowed past the permits
    #                                  before ``overloaded`` is answered

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("router needs at least one backend")
        names = [b.name for b in self.backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names in {names}")
        if self.health_interval_s <= 0 or self.health_timeout_s <= 0:
            raise ValueError("health intervals must be positive")
        if self.repl_coalesce_s < 0:
            raise ValueError("repl_coalesce_s must be non-negative")
        if self.health_misses <= 0:
            raise ValueError("health_misses must be positive")
        if self.connections_per_backend <= 0:
            raise ValueError("connections_per_backend must be positive")
        if self.base_cache_size < 0:
            raise ValueError("base_cache_size must be non-negative")
        if self.relay_concurrency < 0:
            raise ValueError("relay_concurrency must be non-negative")
        if self.relay_delay_s < 0:
            raise ValueError("relay_delay_s must be non-negative")
        if self.relay_queue < 0:
            raise ValueError("relay_queue must be non-negative")

    def as_dict(self) -> dict[str, Any]:
        return {
            "backends": [
                {"name": b.name, "host": b.host, "port": b.port}
                for b in self.backends
            ],
            "vnodes": self.vnodes,
            "replicate": self.replicate,
            "repl_coalesce_s": self.repl_coalesce_s,
            "health_interval_s": self.health_interval_s,
            "health_misses": self.health_misses,
            "relay_concurrency": self.relay_concurrency,
            "relay_delay_s": self.relay_delay_s,
            "relay_queue": self.relay_queue,
        }


# ----------------------------------------------------------------------
# Backend links
# ----------------------------------------------------------------------
class BackendLink:
    """The router's connection pool to one backend node.

    All pooled connections share one :class:`_WireState` (binary
    protocol, deltas on), so the delta bases this *backend* has
    acknowledged are tracked per node, not per connection — the same
    sharing the load generator uses, for the same reason: any
    connection may continue another's delta stream.  Because the
    standby's link accumulates bases through ``replicate`` frames, a
    promoted standby keeps receiving deltas across the failover.

    The pool is *elastic*: ``connections_per_backend`` is the warm
    floor, and an empty pool grows a new connection instead of
    queueing the caller.  Every in-flight request holds a connection
    for a full backend queue drain, so a fixed pool under overload
    would turn the backend's fast admission rejections into unbounded
    head-of-line blocking at the router — deadline misses the client
    never asked for.  Peak pool size is bounded by the concurrency the
    router's own clients offer.
    """

    def __init__(self, spec: BackendSpec, config: RouterConfig) -> None:
        self.spec = spec
        self.wire = _WireState("binary", True)
        self._config = config
        self._clients: list[AsyncServiceClient] = []
        self._pool: asyncio.Queue[AsyncServiceClient] = asyncio.Queue()
        for _ in range(config.connections_per_backend):
            self._pool.put_nowait(self._new_client())

    def _new_client(self) -> AsyncServiceClient:
        client = AsyncServiceClient(
            self.spec.host, self.spec.port,
            timeout=self._config.backend_timeout,
            retries=0,  # the router replays on another node instead
            wire_state=self.wire,
        )
        self._clients.append(client)
        return client

    async def call(self, message: dict[str, Any]) -> dict[str, Any]:
        """One round-trip on a pooled connection (no retries: a
        transport failure is routing signal, not something to hide)."""
        try:
            client = self._pool.get_nowait()
        except asyncio.QueueEmpty:
            client = self._new_client()
        try:
            return await client.call(message)
        except BaseException:
            # Also covers cancellation mid-frame: a half-read
            # connection must not be reused.
            await client.close()
            raise
        finally:
            self._pool.put_nowait(client)

    async def relay(
        self, body: bytes | bytearray | memoryview, version: int
    ) -> tuple[dict[str, Any], bytes, int]:
        """Round-trip a raw frame body verbatim on a pooled connection
        (see :meth:`AsyncServiceClient.relay`) — the data-plane
        worker's zero-materialization forward."""
        try:
            client = self._pool.get_nowait()
        except asyncio.QueueEmpty:
            client = self._new_client()
        try:
            return await client.relay(body, version)
        except BaseException:
            await client.close()
            raise
        finally:
            self._pool.put_nowait(client)

    async def solve(
        self,
        shard: str,
        k: int,
        instance: Instance,
        deadline_ms: float | None,
        moves_only: bool = False,
    ) -> dict[str, Any]:
        """Forward one rebalance, delta-encoded against what this
        backend last acknowledged; ``unknown base`` falls back to one
        full snapshot exactly as the direct client path does."""
        message, sent_delta = self.wire.rebalance_message(
            instance, k, shard, deadline_ms, moves_only=moves_only
        )
        response = await self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            self.wire.forget(shard)
            message, _ = self.wire.rebalance_message(
                instance, k, shard, deadline_ms, full=True,
                moves_only=moves_only,
            )
            response = await self.call(message)
        if response.get("ok"):
            self.wire.note_response(shard, instance, response)
        return response

    async def replicate(
        self, shard: str, k: int, instance: Instance
    ) -> dict[str, Any]:
        """Replay one snapshot of the shard's delta log at this node
        (install-only, no solve)."""
        message, sent_delta = self.wire.rebalance_message(
            instance, k, shard, None, op="replicate"
        )
        response = await self.call(message)
        if sent_delta and response.get("error") == "unknown base":
            self.wire.forget(shard)
            message, _ = self.wire.rebalance_message(
                instance, k, shard, None, full=True, op="replicate"
            )
            response = await self.call(message)
        if response.get("ok"):
            self.wire.note_response(shard, instance, response)
        return response

    async def close(self) -> None:
        for client in self._clients:
            await client.close()


# Queued replication frames per shard before the router collapses the
# backlog into one full-snapshot marker (a full of the current tip
# subsumes every queued frame — latest-wins, like the old coalescing).
REPL_QUEUE_CAP = 64


@dataclass
class _ShardRuntime:
    """The router's per-shard bookkeeping.

    ``latest`` is ``(fingerprint hex, k)`` — the snapshot itself lives
    in the shard's :class:`~repro.service.resident.ResidentShard` and
    is exported on demand (migration, full replication) instead of
    being retained per request.  ``repl_queue`` holds ``("delta",
    wire_delta, k)`` frames to replay at the standby in order, or one
    ``("full", k)`` marker meaning "ship the current tip".
    """

    latest: tuple[str, int] | None = None
    inflight: int = 0
    gate: asyncio.Event | None = None      # cleared while migrating
    drained: asyncio.Event | None = None   # set when inflight hits 0
    repl_queue: deque = field(default_factory=deque)
    repl_task: asyncio.Task | None = None


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Shard-routing coordinator speaking the service protocol on both
    sides: a drop-in ``serve`` endpoint for clients, a protocol client
    of its backends."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.metrics = telemetry.Collector()
        self.ring = HashRing(
            tuple(b.name for b in config.backends), vnodes=config.vnodes
        )
        self._specs = {b.name: b for b in config.backends}
        self._links: dict[str, BackendLink] = {}
        self._dead: set[str] = set()
        self._misses: dict[str, int] = {}
        # Routing overrides from live migration: shard -> node.  An
        # override to a dead node is dropped with the node.
        self._overrides: dict[str, str] = {}
        # The router's own decode state: per-shard delta bases (the
        # client's delta stream terminates here and is re-originated
        # per backend) and per-shard runtime bookkeeping.  The resident
        # is the steady-state tip: a delta whose base names it is
        # applied in O(changed sites) and forwarded as the same frame,
        # so no Instance materializes anywhere on the hot path.
        self._bases: dict[str, OrderedDict[str, Instance]] = {}
        self._residents: dict[str, ResidentShard] = {}
        self._shards: dict[str, _ShardRuntime] = {}
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.monotonic()
        # Relay capacity gate (see RouterConfig.relay_concurrency).
        self._relay_gate: asyncio.Semaphore | None = (
            asyncio.Semaphore(config.relay_concurrency)
            if config.relay_concurrency > 0 else None
        )
        self._relay_waiters = 0

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._stop_event = asyncio.Event()
        for spec in self.config.backends:
            self._links[spec.name] = BackendLink(spec, self.config)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()
        self._health_task = asyncio.create_task(self._health_loop())

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for runtime in self._shards.values():
            if runtime.repl_task is not None:
                runtime.repl_task.cancel()
        for link in self._links.values():
            await link.close()
        self._links.clear()

    # -- node liveness --------------------------------------------------
    @property
    def live_nodes(self) -> list[str]:
        return self.ring.nodes

    def _mark_dead(self, node: str, reason: str) -> None:
        """Take a node out of the ring (idempotent).  Routing
        re-resolves to the standby; its replica bases make the first
        failover request a delta, not a cold full snapshot."""
        if node in self._dead or node not in self._specs:
            return
        # Before the ring changes: shards the dead node served (as
        # primary or standby) lose a replica — after promotion their
        # newly resolved standby starts cold and must be re-seeded.
        affected: list[str] = []
        if self.config.replicate:
            for shard in set(self._residents) | set(self._shards):
                if node in self.ring.owners(shard, 2):
                    affected.append(shard)
        self._dead.add(node)
        self.ring.remove(node)
        self.metrics.add("router.backend_deaths")
        for shard, target in list(self._overrides.items()):
            if target == node:
                del self._overrides[shard]
        for shard in affected:
            runtime = self._runtime(shard)
            k = runtime.latest[1] if runtime.latest is not None else 2
            # A full of the current tip both replaces anything queued
            # for the dead standby and seeds the new one.
            self.metrics.add("router.rereplications")
            self._enqueue_replication(shard, ("full", k))

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for node in list(self.ring.nodes):
                link = self._links.get(node)
                if link is None:
                    continue
                try:
                    response = await asyncio.wait_for(
                        link.call({"op": "health"}),
                        self.config.health_timeout_s,
                    )
                    alive = bool(response.get("ok"))
                except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError):
                    alive = False
                if alive:
                    self._misses[node] = 0
                else:
                    self._misses[node] = self._misses.get(node, 0) + 1
                    self.metrics.add("router.health_misses")
                    if self._misses[node] >= self.config.health_misses:
                        self._mark_dead(node, "health")

    # -- shard bookkeeping ----------------------------------------------
    def _runtime(self, shard: str) -> _ShardRuntime:
        runtime = self._shards.get(shard)
        if runtime is None:
            runtime = self._shards[shard] = _ShardRuntime()
        return runtime

    def _remember_base(self, shard: str, fp_hex: str, instance: Instance) -> None:
        if self.config.base_cache_size == 0:
            return
        bases = self._bases.setdefault(shard, OrderedDict())
        bases[fp_hex] = instance
        bases.move_to_end(fp_hex)
        while len(bases) > self.config.base_cache_size:
            bases.popitem(last=False)

    def _materialize(
        self, shard: str, message: dict[str, Any]
    ) -> tuple[Instance, str] | dict[str, Any]:
        """Decode the request's snapshot (full or delta) against the
        router's base LRU; an unknown base is the client's cue to fall
        back to a full snapshot, exactly as against a single node."""
        delta = message.get("delta")
        if delta is not None:
            base_hex = str(delta.get("base", ""))
            base = self._bases.get(shard, {}).get(base_hex)
            if base is None:
                self.metrics.add("router.delta_misses")
                return error_response("unknown base", shard=shard)
            instance = apply_delta(base, {
                "idx": np.asarray(delta["idx"], dtype=np.int64),
                "sizes": np.asarray(delta["sizes"], dtype=np.float64),
                "costs": np.asarray(delta["costs"], dtype=np.float64),
                "initial": np.asarray(delta["initial"], dtype=np.int64),
            })
        else:
            instance = Instance.from_dict(message["instance"])
        fp_hex = snapshot_fingerprint(instance).hex()
        self._remember_base(shard, fp_hex, instance)
        return instance, fp_hex

    # -- request path ---------------------------------------------------
    def _owner(self, shard: str) -> str | None:
        override = self._overrides.get(shard)
        if override is not None and override in self.ring:
            return override
        return self.ring.owner(shard)

    async def _route_solve(
        self,
        shard: str,
        k: int,
        instance: Instance,
        deadline_ms: float | None,
        moves_only: bool,
    ) -> dict[str, Any]:
        """Forward to the shard's owner; on a transport failure,
        declare the node dead and replay on the re-resolved owner."""
        last_error: Exception | None = None
        for _ in range(len(self._specs) + 1):
            node = self._owner(shard)
            if node is None:
                break
            link = self._links[node]
            try:
                return await asyncio.wait_for(
                    link.solve(shard, k, instance, deadline_ms, moves_only),
                    self.config.backend_timeout,
                )
            except Overloaded as exc:
                # Backpressure passes through untouched: the client's
                # retry_after_ms handling works identically behind the
                # router.
                return exc.response
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                # Transport failures only — a well-formed error
                # *response* from a live backend (bad request, unknown
                # shard, ...) returns to the client as-is and must
                # never declare the node dead.  ConnectionClosed is a
                # ConnectionError, so a severed link still fails over.
                last_error = exc
                self._mark_dead(node, "transport")
                self.metrics.add("router.failover_replays")
                continue
        detail = f": {last_error}" if last_error is not None else ""
        return error_response("no backends alive", message=f"routing failed{detail}")

    async def _op_rebalance(self, message: dict[str, Any]) -> dict[str, Any]:
        """Client-facing rebalance, behind the relay capacity gate when
        one is configured: each request holds a permit for its service
        time *plus* ``relay_delay_s``, so per-process capacity is
        ``relay_concurrency / (service + delay)`` by construction —
        host-core-independent, which is what lets E19 pin worker
        capacity the way ``serve --solve-delay-ms`` pins backend
        capacity.  ``relay_queue`` bounds the waiters; past it the
        router answers ``overloaded`` (bounded p99 instead of an
        unbounded queue)."""
        if not await self._relay_admit():
            return self._relay_rejection()
        try:
            return await self._rebalance_gated(message)
        finally:
            await self._relay_release()

    async def _relay_admit(self) -> bool:
        """Take a relay-capacity permit; ``False`` = reject now (the
        wait queue is full)."""
        gate = self._relay_gate
        if gate is None:
            return True
        if gate.locked() and self._relay_waiters >= self.config.relay_queue:
            self.metrics.add("router.relay_rejections")
            return False
        self._relay_waiters += 1
        try:
            await gate.acquire()
        finally:
            self._relay_waiters -= 1
        return True

    async def _relay_release(self) -> None:
        if self._relay_gate is None:
            return
        if self.config.relay_delay_s > 0:
            await asyncio.sleep(self.config.relay_delay_s)
        self._relay_gate.release()

    def _relay_rejection(self) -> dict[str, Any]:
        return error_response(
            "overloaded",
            retry_after_ms=max(5.0, self.config.relay_delay_s * 1e3),
        )

    async def _rebalance_gated(self, message: dict[str, Any]) -> dict[str, Any]:
        self.metrics.add("router.requests")
        try:
            shard = str(message.get("shard", "default"))
            k = int(message.get("k", 2))
            delta = message.get("delta")
            if delta is not None:
                res = self._residents.get(shard)
                if res is not None and str(delta.get("base", "")) == res.fp_hex:
                    return await self._op_rebalance_delta(
                        shard, k, message, res, delta
                    )
            materialized = self._materialize(shard, message)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("router.bad_requests")
            return error_response("bad request", message=str(exc))
        if isinstance(materialized, dict):
            return materialized  # unknown base
        instance, fp_hex = materialized

        # (Re)seed the resident so the next delta rides the O(churn)
        # passthrough instead of materializing here again.
        res = self._residents.get(shard)
        if res is None or res.fp_hex != fp_hex:
            self._residents[shard] = ResidentShard(instance)
        runtime = self._runtime(shard)
        runtime.latest = (fp_hex, k)
        if runtime.gate is not None:
            # A migration is flipping this shard's routing: hold the
            # request until the flip instead of racing it.
            await runtime.gate.wait()
        runtime.inflight += 1
        try:
            response = await self._route_solve(
                shard, k, instance, message.get("deadline_ms"),
                bool(message.get("moves_only", False)),
            )
        finally:
            runtime.inflight -= 1
            if runtime.inflight == 0 and runtime.drained is not None:
                runtime.drained.set()
        if response.get("ok"):
            # Re-stamp the fingerprint the router's own base LRU uses
            # (bit-identical to the backend's — same snapshot, same
            # hash — but the client's delta stream terminates *here*).
            response = dict(response)
            response["fingerprint"] = fp_hex
            self._enqueue_replication(shard, ("full", k))
        return response

    async def _op_rebalance_delta(
        self,
        shard: str,
        k: int,
        message: dict[str, Any],
        res: ResidentShard,
        delta: dict[str, Any],
    ) -> dict[str, Any]:
        """The O(churn) passthrough: a delta landing on the resident tip
        is gathered/rolled in O(changed sites), forwarded to the owner
        *as the same frame*, and queued for the standby as that frame
        too — no Instance materializes at the router.  The tip commits
        only after the backend acknowledges, so a failed or rejected
        request leaves the client's base valid for the retry.
        """
        try:
            frame, fp = res.preview(delta)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.add("router.bad_requests")
            return error_response("bad request", message=str(exc))
        base_hex = res.fp_hex
        fp_hex = fp.digest().hex()
        self.metrics.add("router.resident_deltas")
        runtime = self._runtime(shard)
        if runtime.gate is not None:
            await runtime.gate.wait()
        runtime.inflight += 1
        try:
            response = await self._route_delta_solve(
                shard, k, message, res, frame
            )
        finally:
            runtime.inflight -= 1
            if runtime.inflight == 0 and runtime.drained is not None:
                runtime.drained.set()
        if response.get("ok"):
            response = dict(response)
            response["fingerprint"] = fp_hex
            if res.fp_hex == base_hex:
                # The tip did not move underneath the forward (closed-
                # loop per-shard traffic never does): advance it and
                # replay the identical frame at the standby.
                res.commit(frame, fp)
                runtime.latest = (fp_hex, k)
                self._enqueue_replication(shard, ("delta", delta, k))
            else:
                # The tip moved underneath the forward (two deltas on
                # one shard raced): this response's fingerprint names a
                # state the resident will never hold, and the frame was
                # neither committed nor replicated.  The client's next
                # delta against it answers ``unknown base`` and resyncs
                # with a full — correct, but worth counting.
                self.metrics.add("router.tip_races")
        return response

    def _post_instance(self, res: ResidentShard, frame: Frame) -> Instance:
        """The post-frame snapshot (uncommitted tip + frame), for the
        full-snapshot degradations of the passthrough path."""
        sizes = res.sizes.copy()
        costs = res.costs.copy()
        initial = res.initial.copy()
        sizes[frame.idx] = frame.sizes
        costs[frame.idx] = frame.costs
        initial[frame.idx] = frame.initial
        return Instance.trusted(sizes, costs, res.num_processors, initial)

    async def _route_delta_solve(
        self,
        shard: str,
        k: int,
        message: dict[str, Any],
        res: ResidentShard,
        frame: Frame,
    ) -> dict[str, Any]:
        """Forward the delta frame verbatim, with the same failover
        replay as :meth:`_route_solve`.  A backend that lost (or, as a
        freshly promoted standby, never finished absorbing) the lineage
        answers ``unknown base`` and gets the post-frame state as one
        full snapshot instead."""
        forward: dict[str, Any] = {
            "op": "rebalance", "shard": shard, "k": k,
            "delta": message["delta"],
        }
        for key in ("deadline_ms", "moves_only"):
            if key in message:
                forward[key] = message[key]
        last_error: Exception | None = None
        for _ in range(len(self._specs) + 1):
            node = self._owner(shard)
            if node is None:
                break
            link = self._links[node]
            try:
                response = await asyncio.wait_for(
                    link.call(forward), self.config.backend_timeout
                )
                if response.get("error") == "unknown base":
                    self.metrics.add("router.delta_fallbacks")
                    full = dict(forward)
                    del full["delta"]
                    full["instance"] = self._post_instance(res, frame).to_wire()
                    response = await asyncio.wait_for(
                        link.call(full), self.config.backend_timeout
                    )
                return response
            except Overloaded as exc:
                return exc.response
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                # Transport failures only, as in _route_solve: error
                # responses from a live backend are not failover signal.
                last_error = exc
                self._mark_dead(node, "transport")
                self.metrics.add("router.failover_replays")
                continue
        detail = f": {last_error}" if last_error is not None else ""
        return error_response("no backends alive", message=f"routing failed{detail}")

    # -- replication ----------------------------------------------------
    def _standby_for(self, shard: str) -> str | None:
        owners = self.ring.owners(shard, 2)
        return owners[1] if len(owners) > 1 else None

    def _enqueue_replication(self, shard: str, entry: tuple) -> None:
        """Queue one replication step for the shard's standby.

        ``("delta", wire_delta, k)`` replays the exact client frame —
        O(churn) at both ends, in commit order (the queue is FIFO and
        one drain task owns it).  ``("full", k)`` ships the current
        resident tip; it subsumes everything queued, so it clears the
        queue, and a queue past :data:`REPL_QUEUE_CAP` collapses into
        one — a lagging standby skips intermediate states rather than
        holding an unbounded log.
        """
        if not self.config.replicate:
            return
        if self._standby_for(shard) is None:
            return
        runtime = self._runtime(shard)
        queue = runtime.repl_queue
        if entry[0] == "full":
            queue.clear()
        queue.append(entry)
        if len(queue) > REPL_QUEUE_CAP:
            k = entry[-1]
            queue.clear()
            queue.append(("full", k))
            self.metrics.add("router.replication_collapses")
        if runtime.repl_task is None or runtime.repl_task.done():
            runtime.repl_task = asyncio.create_task(self._drain_replication(shard))

    async def _drain_replication(self, shard: str) -> None:
        runtime = self._runtime(shard)
        while runtime.repl_queue:
            if self.config.repl_coalesce_s > 0:
                # Coalescing window: let the decide's response reach the
                # client (and further frames pile up — a backlog past
                # the cap collapses to one full) before waking the
                # standby.  Replication is off the decide's critical
                # path by design; this keeps it off the same *cores*
                # as the response tail too.
                await asyncio.sleep(self.config.repl_coalesce_s)
            entry = runtime.repl_queue.popleft()
            standby = self._standby_for(shard)
            if standby is None:
                runtime.repl_queue.clear()
                return
            link = self._links.get(standby)
            if link is None or standby not in self.ring:
                continue
            try:
                if entry[0] == "delta":
                    _, delta, k = entry
                    response = await link.call(
                        {"op": "replicate", "shard": shard, "delta": delta}
                    )
                    if (
                        not response.get("ok")
                        and response.get("error") == "unknown base"
                    ):
                        # The standby's tip diverged (fresh standby, or
                        # missed frames): one full of the current tip
                        # subsumes this frame and the rest of the queue.
                        runtime.repl_queue.clear()
                        response = await self._replicate_full(link, shard, k)
                else:
                    _, k = entry
                    response = await self._replicate_full(link, shard, k)
                if response.get("ok"):
                    self.metrics.add("router.replicated")
                else:
                    self.metrics.add("router.replication_errors")
            except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError):
                # Detection is the health loop's job; replication just
                # records the miss and moves on.
                self.metrics.add("router.replication_errors")

    async def _replicate_full(
        self, link: BackendLink, shard: str, k: int
    ) -> dict[str, Any]:
        """Ship the shard's current tip to ``link`` as one snapshot."""
        res = self._residents.get(shard)
        if res is not None:
            instance = res.export_instance()
        else:
            bases = self._bases.get(shard)
            if not bases:
                return error_response("no snapshot", shard=shard)
            instance = bases[next(reversed(bases))]
        return await link.replicate(shard, k, instance)

    # -- live migration -------------------------------------------------
    async def migrate(self, shard: str, target: str) -> dict[str, Any]:
        """Move a shard to ``target``: drain, ship the snapshot, flip.

        The gate closes the shard's lane to new requests; once the
        in-flight count drains to zero the latest base snapshot (plus
        its warm-engine fingerprint, which *is* the snapshot's
        fingerprint) is shipped to the target as one ``replicate``
        frame, the routing override flips, and the gate reopens.
        """
        if target not in self.ring:
            return error_response("unknown backend", backend=target)
        runtime = self._runtime(shard)
        if runtime.gate is not None:
            return error_response("migration in progress", shard=shard)
        source = self._owner(shard)
        gate = runtime.gate = asyncio.Event()
        try:
            if runtime.inflight:
                runtime.drained = asyncio.Event()
                await runtime.drained.wait()
                runtime.drained = None
            snapshot: tuple[str, Instance, int] | None = None
            res = self._residents.get(shard)
            if res is not None and runtime.latest is not None:
                # Materialize-on-demand: the tip lives in the resident
                # arrays, exported only for this migration frame.
                snapshot = (res.fp_hex, res.export_instance(), runtime.latest[1])
            if snapshot is None and source is not None:
                snapshot = await self._fetch_latest(source, shard)
            fp_hex = None
            if snapshot is not None:
                fp_hex, instance, k = snapshot
                link = self._links[target]
                response = await link.replicate(shard, k, instance)
                if not response.get("ok"):
                    return error_response(
                        "migration failed", shard=shard,
                        message=str(response.get("error")),
                    )
            self._overrides[shard] = target
            self.metrics.add("router.migrations")
            return ok_response(
                op="migrate", shard=shard, source=source,
                target=target, fingerprint=fp_hex,
            )
        finally:
            runtime.gate = None
            gate.set()

    async def _fetch_latest(
        self, node: str, shard: str
    ) -> tuple[str, Instance, int] | None:
        """Pull the shard's newest base from its current owner (the
        router restarted, or never saw the shard's traffic)."""
        link = self._links.get(node)
        if link is None:
            return None
        try:
            response = await link.call({"op": "migrate", "shard": shard})
        except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError):
            return None
        if not response.get("ok") or not response.get("found"):
            return None
        instance = Instance.from_dict(response["instance"])
        return str(response["fingerprint"]), instance, 2

    # -- aggregate ops --------------------------------------------------
    async def _op_status(self) -> dict[str, Any]:
        backends: dict[str, Any] = {}
        for node in self.ring.nodes:
            link = self._links[node]
            try:
                backends[node] = await asyncio.wait_for(
                    link.call({"op": "status"}), self.config.backend_timeout
                )
            except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError) as exc:
                backends[node] = {"ok": False, "error": str(exc)}
        return ok_response(
            router={
                "uptime_s": time.monotonic() - self._started_at,
                "config": self.config.as_dict(),
                "live": self.ring.nodes,
                "dead": sorted(self._dead),
                "overrides": dict(self._overrides),
                "shards": len(self._shards),
                "residents": {
                    name: res.fp_hex for name, res in self._residents.items()
                },
                "metrics": self.metrics.as_dict(),
            },
            backends=backends,
        )

    async def _op_reset(self, message: dict[str, Any]) -> dict[str, Any]:
        shard = message.get("shard")
        reset: set[str] = set()
        for node in self.ring.nodes:
            link = self._links[node]
            try:
                response = await link.call(
                    {"op": "reset"} if shard is None
                    else {"op": "reset", "shard": str(shard)}
                )
            except (OSError, ProtocolError, ServiceError, asyncio.TimeoutError):
                continue
            if response.get("ok"):
                reset.update(response.get("reset", []))
            link.wire.forget(None if shard is None else str(shard))
        if shard is None:
            self._bases.clear()
            self._residents.clear()
            self._shards.clear()
        else:
            self._bases.pop(str(shard), None)
            self._residents.pop(str(shard), None)
            self._shards.pop(str(shard), None)
        return ok_response(reset=sorted(reset))

    def _op_health(self) -> dict[str, Any]:
        return ok_response(
            op="health",
            uptime_s=time.monotonic() - self._started_at,
            live=self.ring.nodes,
            dead=sorted(self._dead),
        )

    # -- connection handling --------------------------------------------
    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "rebalance":
            return await self._op_rebalance(message)
        if op == "status":
            return await self._op_status()
        if op == "reset":
            return await self._op_reset(message)
        if op == "ping":
            return ok_response(op="ping")
        if op == "health":
            return self._op_health()
        if op == "migrate":
            target = message.get("target")
            if target is None:
                return error_response("bad request", message="migrate needs target")
            return await self.migrate(
                str(message.get("shard", "default")), str(target)
            )
        self.metrics.add("router.protocol_errors")
        return error_response("unknown op", op=op)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.add("router.connections")
        try:
            while True:
                try:
                    frame = await read_frame_versioned(reader)
                except ProtocolError as exc:
                    self.metrics.add("router.protocol_errors")
                    writer.write(encode_frame(error_response(
                        "protocol error", message=str(exc))))
                    await writer.drain()
                    break
                if frame is None:
                    break
                message, version = frame
                response = await self._dispatch(message)
                # Answer in the format the request arrived in, like the
                # single-node server: the router is a drop-in endpoint.
                writer.write(encode_frame(response, version=version))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# Background-thread embedding and backend process spawning
# ----------------------------------------------------------------------
class RouterHandle:
    """A router running on a private event loop in a daemon thread."""

    def __init__(
        self,
        router: ClusterRouter,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.router = router
        self._loop = loop
        self._thread = thread
        self.host = router.config.host
        self.port = router.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.router.request_stop)
            self._thread.join(timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_router_background(config: RouterConfig) -> RouterHandle:
    """Start a :class:`ClusterRouter` on a daemon thread; blocks until
    the listener is bound, re-raising any startup failure here."""
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            router = ClusterRouter(config)
            try:
                await router.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            box["router"] = router
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await router.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-router", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):  # pragma: no cover
        raise RuntimeError("router failed to start within 60s")
    if "error" in box:
        raise box["error"]
    return RouterHandle(box["router"], box["loop"], thread)


@dataclass
class ServeProcess:
    """One spawned ``python -m repro serve`` backend."""

    process: subprocess.Popen
    host: str
    port: int
    extra_args: tuple[str, ...] = field(default_factory=tuple)

    def kill(self) -> None:
        """``kill -9``: the failure mode the failover tests inject."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait(timeout=10.0)


def spawn_serve_process(
    *extra_args: str, host: str = "127.0.0.1", timeout_s: float = 60.0
) -> ServeProcess:
    """Start a real ``serve`` OS process and wait for its port.

    Backends must be processes (not threads) for the cluster to scale
    past one GIL — this is the helper the E17 benchmark, the failover
    tests, and ``loadgen --router N --spawn`` all build on.  The child
    inherits this interpreter and a ``PYTHONPATH`` that can import
    :mod:`repro` from source checkouts.
    """
    return _spawn_port_file_process("serve", extra_args, host, timeout_s)


def spawn_router_process(
    backends: tuple[BackendSpec, ...],
    *extra_args: str,
    host: str = "127.0.0.1",
    timeout_s: float = 60.0,
) -> ServeProcess:
    """Start a real ``router`` OS process over already-running backends.

    :func:`start_router_background` runs the router on a daemon thread
    *inside the caller's interpreter* — fine for failover tests, but a
    loadgen driving many shard streams from that same interpreter then
    shares its GIL with every forward the router makes, and each hop
    waits on the client's own numpy work.  Latency benchmarks (E18)
    must therefore spawn the router exactly as a deployment does: its
    own process, like the backends.
    """
    spec_arg = ",".join(f"{b.name}={b.host}:{b.port}" for b in backends)
    return _spawn_port_file_process(
        "router", ("--backends", spec_arg, *extra_args), host, timeout_s
    )


def _spawn_port_file_process(
    command: str, extra_args: tuple[str, ...], host: str, timeout_s: float
) -> ServeProcess:
    port_file = Path(
        tempfile.mkstemp(prefix=f"repro-{command}-", suffix=".port")[1]
    )
    port_file.write_text("")
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", command,
            "--host", host, "--port", "0",
            "--port-file", str(port_file),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout_s
    try:
        while True:
            text = port_file.read_text().strip() if port_file.exists() else ""
            if text:
                return ServeProcess(
                    process=process, host=host, port=int(text),
                    extra_args=extra_args,
                )
            if process.poll() is not None:
                raise RuntimeError(
                    f"{command} process exited with "
                    f"{process.returncode} before binding"
                )
            if time.monotonic() > deadline:
                process.kill()
                raise RuntimeError(f"{command} process did not bind in time")
            time.sleep(0.02)
    finally:
        port_file.unlink(missing_ok=True)
