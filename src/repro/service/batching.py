"""Dynamic micro-batching for the rebalancing service.

The same shape an inference-serving stack uses: requests accumulate in
the admission queue for at most ``max_wait_ms`` (or until ``max_batch``
are in hand), then the whole batch is solved in one executor hop.
Batching wins twice here:

* **Fingerprint dedupe** — many frontends observing one cluster epoch
  submit byte-identical snapshots within milliseconds of each other.
  Inside a batch, requests with equal ``(shard, k, fingerprint)`` keys
  collapse into one solve whose result fans back out to every caller
  (:func:`repro.core.engine.snapshot_fingerprint` guarantees equal
  fingerprints mean byte-identical instances).
* **Amortized dispatch** — one event-loop → executor round-trip and
  one :func:`repro.parallel.run_sweep` fan-out per batch instead of
  per request, so the event loop stays responsive while the solver
  pool chews.

A batch is *planned* into per-shard lanes: shards are independent (one
warm engine each), so the server fans lanes out across worker threads,
while solves within a lane stay serial and in arrival order — each
shard's engine sees the same snapshot sequence it would have seen
unbatched, which is what keeps its table-patching effective and its
decisions reproducible.

Counters: ``service.batches``, ``service.deduped``; histogram
``service.batch_size``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from .. import telemetry
from ..core.instance import Instance
from .admission import AdmissionQueue, PendingRequest

__all__ = ["BatchConfig", "MicroBatcher", "ShardLane", "UniqueSolve"]


@dataclass(frozen=True)
class BatchConfig:
    """Knobs of the micro-batcher.

    ``max_batch`` bounds how many requests one solve pass may serve;
    ``max_wait_ms`` bounds how long the first request of a batch may
    wait for company; ``dedupe=False`` disables snapshot collapsing
    (every request gets its own solve — the naive baseline).
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    dedupe: bool = True

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")


@dataclass
class UniqueSolve:
    """One distinct snapshot within a batch and everyone awaiting it.

    ``shm`` is the snapshot's ``(slot, generation)`` ring token,
    inherited from the first request of the group: deduped requests
    share one fingerprint, hence one slot, and each of them holds its
    own pin, so the token outlives the whole solve.
    """

    shard: str
    k: int
    instance: Instance | None
    requests: list[PendingRequest] = field(default_factory=list)
    shm: tuple[int, int] | None = None
    # Resident-path plumbing, inherited from the first request of the
    # group (see PendingRequest).
    install: bool = False
    moves_only: bool = False
    frames: list = field(default_factory=list)
    apply_only: bool = False


@dataclass
class ShardLane:
    """A batch's slice for one shard: solves in arrival order."""

    shard: str
    solves: list[UniqueSolve] = field(default_factory=list)


class MicroBatcher:
    """Drains the admission queue into deduped per-shard lanes."""

    def __init__(
        self,
        queue: AdmissionQueue,
        config: BatchConfig,
        metrics: telemetry.Collector,
    ) -> None:
        self.queue = queue
        self.config = config
        self.metrics = metrics

    async def next_batch(self) -> list[PendingRequest]:
        """Block for the next batch: the first request opens a window
        of ``max_wait_ms`` that closes early at ``max_batch``."""
        first = await self.queue.get()
        batch = [first]
        if self.config.max_batch == 1:
            return batch
        loop = asyncio.get_running_loop()
        window_closes = loop.time() + self.config.max_wait_ms / 1e3
        while len(batch) < self.config.max_batch:
            request = await self.queue.get_nowait_or_wait(
                window_closes - loop.time()
            )
            if request is None:
                break
            batch.append(request)
        return batch

    def plan(self, batch: list[PendingRequest]) -> list[ShardLane]:
        """Group a (already shed) batch into deduped per-shard lanes."""
        lanes: dict[str, ShardLane] = {}
        index: dict[tuple[str, int, bytes, bool, bool], UniqueSolve] = {}
        deduped = 0
        for request in batch:
            # moves_only is part of the key: the two response shapes
            # for one snapshot cannot share a response object.  So is
            # apply_only: a live request must never collapse into an
            # expired one's decide-less solve.
            key = (
                request.shard, request.k, request.fingerprint,
                request.moves_only, request.apply_only,
            )
            solve = index.get(key) if self.config.dedupe else None
            if solve is not None:
                solve.requests.append(request)
                deduped += 1
                continue
            solve = UniqueSolve(
                shard=request.shard, k=request.k, instance=request.instance,
                requests=[request], shm=request.shm,
                install=request.install, moves_only=request.moves_only,
                frames=request.frames, apply_only=request.apply_only,
            )
            index[key] = solve
            lane = lanes.get(request.shard)
            if lane is None:
                lane = lanes[request.shard] = ShardLane(shard=request.shard)
            lane.solves.append(solve)
        self.metrics.add("service.batches")
        self.metrics.observe("service.batch_size", float(len(batch)))
        if deduped:
            self.metrics.add("service.deduped", deduped)
        return list(lanes.values())
